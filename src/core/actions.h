/**
 * @file
 * Machine-readable encoding of the cells of the paper's protocol tables.
 *
 * Each cell of Tables 1-7 holds one or more *alternative* actions (the
 * paper's "or" entries); where a choice exists, the first alternative is
 * the paper's preferred one.  fbsim protocol engines interpret these
 * cells directly, so the table benches are renders of the live engine
 * data and the section 3.4 compatibility claim ("select an action at
 * each instant ... using a random number generator") can be tested
 * literally.
 *
 * Notation mapping (see "Notes on Tables" in the paper):
 *   CH:O/M   -> StateSpec{ifCh = O, ifNotCh = M}
 *   CH:S/E   -> StateSpec{ifCh = S, ifNotCh = E}
 *   fixed X  -> StateSpec{X, X}
 *   R        -> BusCmd::Read
 *   W        -> BusCmd::WriteWord (local Write events) or
 *               BusCmd::WriteLine (Pass/Flush pushes)
 *   "M,CA,IM" with no R/W -> BusCmd::AddrOnly (pure invalidate)
 *   Read>Write -> LocalAction::readThenWrite
 *   BS;S,CA,W  -> SnoopAction{bs = true, pushState = S, pushCa = true}
 *   BC?        -> two alternatives differing only in bc (renderer folds
 *                 them back into "BC?")
 *   CH?        -> Tri::DontCare
 */

#ifndef FBSIM_CORE_ACTIONS_H_
#define FBSIM_CORE_ACTIONS_H_

#include <cstdint>
#include <vector>

#include "core/events.h"
#include "core/state.h"

namespace fbsim {

/**
 * Result-state specification, possibly conditional on the wired-OR CH
 * response observed from *other* caches during the transaction.
 */
struct StateSpec
{
    State ifCh;      ///< result when some other cache asserted CH
    State ifNotCh;   ///< result when no other cache asserted CH

    constexpr bool conditional() const { return ifCh != ifNotCh; }

    /** Resolve against the observed others-CH value. */
    constexpr State resolve(bool others_ch) const
    { return others_ch ? ifCh : ifNotCh; }

    bool operator==(const StateSpec &) const = default;
};

/** Fixed (unconditional) result state. */
constexpr StateSpec
toState(State s)
{
    return {s, s};
}

/** The paper's CH:O/M notation. */
inline constexpr StateSpec kChOM = {State::O, State::M};

/** The paper's CH:S/E notation. */
inline constexpr StateSpec kChSE = {State::S, State::E};

/** Which kind of bus client may use an action (the *, ** table marks). */
enum class ClientKind : std::uint8_t {
    CopyBack = 1 << 0,      ///< unmarked entries
    WriteThrough = 1 << 1,  ///< "*" entries
    NonCaching = 1 << 2,    ///< "**" entries
};

/** Bitmask of ClientKind values. */
using ClientKindMask = std::uint8_t;

constexpr ClientKindMask
kindBit(ClientKind k)
{
    return static_cast<ClientKindMask>(k);
}

inline constexpr ClientKindMask kAnyKind =
    kindBit(ClientKind::CopyBack) | kindBit(ClientKind::WriteThrough) |
    kindBit(ClientKind::NonCaching);

/**
 * One alternative action for a (state, local event) cell of a protocol
 * table: the result state, the bus transaction to issue (if any) and the
 * intent signals to assert on it.
 */
struct LocalAction
{
    StateSpec next = toState(State::I);
    bool ca = false;           ///< assert CA on the transaction
    bool im = false;           ///< assert IM on the transaction
    bool bc = false;           ///< assert BC on the transaction
    BusCmd cmd = BusCmd::Read; ///< transaction payload class
    bool usesBus = false;      ///< false: purely local transition
    bool readThenWrite = false;///< the composite "Read>Write" entry
    /** Who may pick this alternative (default: copy-back caches). */
    ClientKindMask kinds = kindBit(ClientKind::CopyBack);

    bool operator==(const LocalAction &) const = default;
};

/** Three-valued response-signal specification ("CH?" = DontCare). */
enum class Tri : std::uint8_t { No = 0, Assert = 1, DontCare = 2 };

/**
 * One alternative action for a (state, bus event) cell: the response
 * signals this snooper drives and its resulting state.
 *
 * When bs is set the snooper aborts the transaction, performs a push
 * (whole-line write-back, asserting CA if pushCa), transitions to
 * pushState, and the aborted transaction then retries against the new
 * state (section 3.2.2's Futurebus adaptation of Write-Once, Illinois
 * and Firefly).
 */
struct SnoopAction
{
    StateSpec next = toState(State::I);
    Tri ch = Tri::No;    ///< drive CH
    bool di = false;     ///< drive DI (owner intervention)
    bool sl = false;     ///< drive SL (connect on broadcast transfer)
    bool bs = false;     ///< abort; push; retry
    bool pushCa = true;  ///< CA asserted on the push transaction
    State pushState = State::S; ///< state after the push, before retry

    bool operator==(const SnoopAction &) const = default;
};

/** Alternatives for one Table-1 style cell; empty = illegal ("--"). */
using LocalCell = std::vector<LocalAction>;

/** Alternatives for one Table-2 style cell; empty = illegal ("--"). */
using SnoopCell = std::vector<SnoopAction>;

} // namespace fbsim

#endif // FBSIM_CORE_ACTIONS_H_
