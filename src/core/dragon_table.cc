/**
 * @file
 * Transcription of Table 4: the Dragon (Xerox PARC) protocol [McCr84]
 * on the Futurebus.  A write-update protocol: writes to shared data are
 * broadcast (CA,IM,BC) and other holders update their copies; no
 * invalidations are ever generated.
 *
 * The paper notes the one Futurebus deviation: broadcast writes on the
 * Futurebus also update main memory, which the Dragon proper defers to
 * replacement - "extra memory updates, however, cause no
 * incompatibility".  fbsim's bus implements the Futurebus behaviour.
 *
 * Published cells are local Read/Write and bus columns 5 and 8; the
 * remaining cells (replacement, foreign events 6/7/9/10) are the MOESI
 * class's preferred actions, making this engine a class member.
 */

#include "core/protocol_table.h"
#include "core/table_builders.h"

namespace fbsim {

using namespace table_builders;

namespace {

ProtocolTable
buildDragonTable()
{
    ProtocolTable t("Dragon",
                    {State::M, State::O, State::E, State::S, State::I});

    // Local events (published: Read, Write).
    t.setLocal(State::M, LocalEvent::Read, {stay(State::M)});
    t.setLocal(State::M, LocalEvent::Write, {stay(State::M)});
    t.setLocal(State::O, LocalEvent::Read, {stay(State::O)});
    t.setLocal(State::O, LocalEvent::Write,
               {issue(kChOM, CA_IM_BC, BusCmd::WriteWord)});
    t.setLocal(State::E, LocalEvent::Read, {stay(State::E)});
    t.setLocal(State::E, LocalEvent::Write, {stay(State::M)});
    t.setLocal(State::S, LocalEvent::Read, {stay(State::S)});
    t.setLocal(State::S, LocalEvent::Write,
               {issue(kChOM, CA_IM_BC, BusCmd::WriteWord)});
    t.setLocal(State::I, LocalEvent::Read,
               {issue(kChSE, CA, BusCmd::Read)});
    t.setLocal(State::I, LocalEvent::Write, {readThenWrite()});

    // Replacement support (not shown in Table 4).
    t.setLocal(State::M, LocalEvent::Pass,
               {issue(toState(State::E), CA, BusCmd::WriteLine)});
    t.setLocal(State::M, LocalEvent::Flush,
               {issue(toState(State::I), NONE, BusCmd::WriteLine)});
    t.setLocal(State::O, LocalEvent::Pass,
               {issue(kChSE, CA, BusCmd::WriteLine)});
    t.setLocal(State::O, LocalEvent::Flush,
               {issue(toState(State::I), NONE, BusCmd::WriteLine)});
    t.setLocal(State::E, LocalEvent::Flush, {stay(State::I)});
    t.setLocal(State::S, LocalEvent::Flush, {stay(State::I)});

    // Bus events (published: columns 5 and 8).
    t.setSnoop(State::M, BusEvent::ReadByCache,
               {respond(toState(State::O), Tri::Assert, true)});
    t.setSnoop(State::O, BusEvent::ReadByCache,
               {respond(toState(State::O), Tri::Assert, true)});
    t.setSnoop(State::E, BusEvent::ReadByCache,
               {respond(toState(State::S), Tri::Assert)});
    t.setSnoop(State::S, BusEvent::ReadByCache,
               {respond(toState(State::S), Tri::Assert)});
    t.setSnoop(State::I, BusEvent::ReadByCache,
               {respond(toState(State::I))});
    // Column 8: holders connect and update; M/E are illegal (a
    // broadcast write implies the master holds a copy).
    t.setSnoop(State::O, BusEvent::BroadcastWriteCache,
               {respond(toState(State::S), Tri::Assert, false, true)});
    t.setSnoop(State::S, BusEvent::BroadcastWriteCache,
               {respond(toState(State::S), Tri::Assert, false, true)});
    t.setSnoop(State::I, BusEvent::BroadcastWriteCache,
               {respond(toState(State::I))});

    // Foreign-event extension (columns 6, 7, 9, 10).
    t.setSnoop(State::M, BusEvent::ReadForModify,
               {respond(toState(State::I), Tri::No, true)});
    t.setSnoop(State::O, BusEvent::ReadForModify,
               {respond(toState(State::I), Tri::No, true)});
    t.setSnoop(State::E, BusEvent::ReadForModify,
               {respond(toState(State::I))});
    t.setSnoop(State::S, BusEvent::ReadForModify,
               {respond(toState(State::I))});
    t.setSnoop(State::M, BusEvent::ReadNoCache,
               {respond(toState(State::M), Tri::DontCare, true)});
    t.setSnoop(State::O, BusEvent::ReadNoCache,
               {respond(kChOM, Tri::No, true)});
    t.setSnoop(State::E, BusEvent::ReadNoCache,
               {respond(toState(State::E), Tri::DontCare)});
    t.setSnoop(State::S, BusEvent::ReadNoCache,
               {respond(toState(State::S), Tri::Assert)});
    t.setSnoop(State::M, BusEvent::WriteNoCache,
               {respond(toState(State::M), Tri::DontCare, true)});
    t.setSnoop(State::O, BusEvent::WriteNoCache,
               {respond(toState(State::O), Tri::DontCare, true)});
    t.setSnoop(State::E, BusEvent::WriteNoCache,
               {respond(toState(State::I))});
    t.setSnoop(State::S, BusEvent::WriteNoCache,
               {respond(toState(State::I))});
    t.setSnoop(State::M, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::M), Tri::DontCare, false, true)});
    t.setSnoop(State::O, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::O), Tri::Assert, false, true)});
    t.setSnoop(State::E, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::E), Tri::DontCare, false, true)});
    t.setSnoop(State::S, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::S), Tri::Assert, false, true)});
    for (BusEvent ev :
         {BusEvent::ReadForModify, BusEvent::ReadNoCache,
          BusEvent::WriteNoCache, BusEvent::BroadcastWriteNoCache}) {
        t.setSnoop(State::I, ev, {respond(toState(State::I))});
    }

    return t;
}

} // namespace

const ProtocolTable &
dragonTable()
{
    static const ProtocolTable table = buildDragonTable();
    return table;
}

} // namespace fbsim
