/**
 * @file
 * The MOESI cache-line state model (paper section 3.1).
 *
 * Each valid cached line is characterized by three orthogonal attributes
 * (Figure 3 of the paper):
 *
 *   - validity:      the line holds data at all;
 *   - exclusiveness: the line is the only cached copy in the system;
 *   - ownership:     this cache is responsible for the accuracy of the
 *                    data for the entire system (a.k.a. "modified").
 *
 * Of the eight attribute combinations only five are meaningful, because
 * exclusiveness and ownership of invalid data are moot:
 *
 *   M  Modified   = exclusive owned     (exclusive modified)
 *   O  Owned      = shareable owned     (shareable modified)
 *   E  Exclusive  = exclusive unowned   (exclusive unmodified)
 *   S  Shareable  = shareable unowned   (shareable unmodified)
 *   I  Invalid
 *
 * The state-pair qualities of Figure 4 are exposed as predicates:
 * intervenient (M,O), "only cached copy" (M,E), unowned (E,S) and
 * non-exclusive (O,S).
 */

#ifndef FBSIM_CORE_STATE_H_
#define FBSIM_CORE_STATE_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace fbsim {

/** The five MOESI line states. */
enum class State : std::uint8_t { M = 0, O = 1, E = 2, S = 3, I = 4 };

/** Number of distinct states (table row count). */
inline constexpr int kNumStates = 5;

/** All states in the paper's display order (M, O, E, S, I). */
inline constexpr State kAllStates[kNumStates] = {
    State::M, State::O, State::E, State::S, State::I,
};

/** The three orthogonal characteristics of cached data (Figure 3). */
struct StateAttributes
{
    bool valid;
    bool exclusive;
    bool owned;

    bool operator==(const StateAttributes &) const = default;
};

/** True unless the state is I. */
constexpr bool
isValid(State s)
{
    return s != State::I;
}

/** True for M and E: the only cached copy system-wide. */
constexpr bool
isExclusive(State s)
{
    return s == State::M || s == State::E;
}

/** True for M and O: this cache owns (is responsible for) the data. */
constexpr bool
isOwned(State s)
{
    return s == State::M || s == State::O;
}

/**
 * True for M and O: the cache must intervene (preempt memory) when
 * another module accesses the line (Figure 4, "intervention").
 */
constexpr bool
isIntervenient(State s)
{
    return isOwned(s);
}

/** True for O and S: other cached copies may exist. */
constexpr bool
isShareable(State s)
{
    return s == State::O || s == State::S;
}

/** True for E and S: not responsible for the line's integrity. */
constexpr bool
isUnowned(State s)
{
    return isValid(s) && !isOwned(s);
}

/** Decompose a state into its Figure 3 attributes. */
constexpr StateAttributes
attributesOf(State s)
{
    return {isValid(s), isExclusive(s), isOwned(s)};
}

/**
 * Compose a state from attributes.  Returns std::nullopt for the three
 * meaningless combinations (exclusiveness/ownership of invalid data).
 */
std::optional<State> stateFromAttributes(const StateAttributes &attrs);

/** One-letter abbreviation: "M", "O", "E", "S" or "I". */
std::string_view stateName(State s);

/** Long name, e.g. "Exclusive owned" for M (paper's first terminology). */
std::string_view stateLongName(State s);

/** Alternate ("modified") terminology, e.g. "Exclusive modified" for M. */
std::string_view stateModifiedName(State s);

/** Parse a one-letter abbreviation; nullopt if unrecognized. */
std::optional<State> stateFromName(std::string_view name);

} // namespace fbsim

#endif // FBSIM_CORE_STATE_H_
