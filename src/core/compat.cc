#include "core/compat.h"

#include "common/logging.h"

namespace fbsim {

namespace {

/** Demotion closure per the notes (see header). */
bool
inDemotionClosure(State prescribed, State actual)
{
    if (prescribed == actual)
        return true;
    switch (prescribed) {
      case State::M:
        return actual == State::O;                       // note 9
      case State::E:
        // note 10 (E->S), note 12 (E->M) and their compositions
        // (E->M->O, E->S->I).
        return actual == State::S || actual == State::M ||
               actual == State::O || actual == State::I;
      case State::S:
        return actual == State::I;                       // silent drop
      case State::O:
      case State::I:
        return false;
    }
    return false;
}

bool
specDemotes(const StateSpec &prescribed, const StateSpec &actual)
{
    return inDemotionClosure(prescribed.ifCh, actual.ifCh) &&
           inDemotionClosure(prescribed.ifNotCh, actual.ifNotCh);
}

/** Does local action `a` realize MOESI alternative `m`? */
bool
localMatches(const LocalAction &m, const LocalAction &a)
{
    if (m.readThenWrite || a.readThenWrite)
        return m.readThenWrite && a.readThenWrite;
    if (m.usesBus != a.usesBus)
        return false;
    if (m.usesBus &&
        (m.cmd != a.cmd || m.ca != a.ca || m.im != a.im || m.bc != a.bc))
        return false;
    return specDemotes(m.next, a.next);
}

/** Does snoop action `a` realize MOESI alternative `m`? */
bool
snoopMatches(const SnoopAction &m, const SnoopAction &a)
{
    if (m.bs || a.bs)
        return false;   // the class has no abort actions
    if (!specDemotes(m.next, a.next))
        return false;
    // Ownership obligations are exact.
    if (m.di != a.di)
        return false;
    // A snooper that drops its copy must not claim retention.
    bool a_invalid = a.next == toState(State::I);
    if (a_invalid)
        return a.ch != Tri::Assert && !a.sl;
    // Otherwise CH must agree unless the class marks it don't-care.
    if (m.ch != Tri::DontCare && m.ch != a.ch)
        return false;
    return m.sl == a.sl;
}

/**
 * A BS response is implementable on the Futurebus when the push leaves
 * the owner in a legal post-Pass state: from M a Pass prescribes E;
 * from O it prescribes CH:S/E (conservatively S).
 */
bool
busyImplementable(State from, const SnoopAction &a)
{
    if (!a.bs)
        return false;
    if (!isIntervenient(from))
        return false;
    State prescribed = from == State::M ? State::E : State::S;
    return inDemotionClosure(prescribed, a.pushState) ||
           a.pushState == prescribed;
}

} // namespace

bool
isLegalDemotion(State prescribed, State actual)
{
    return inDemotionClosure(prescribed, actual);
}

ClassMembership
checkClassMembership(const ProtocolTable &table)
{
    const ProtocolTable &klass = moesiTable();
    ClassMembership out;
    out.member = true;
    out.implementableWithBusy = true;

    auto reject = [&](const std::string &what, bool busy_ok) {
        out.member = false;
        out.violations.push_back(table.name() + ": " + what);
        if (!busy_ok) {
            out.implementableWithBusy = false;
            out.violationsWithBusy.push_back(table.name() + ": " + what);
        }
    };

    for (State s : table.states()) {
        if (!klass.hasState(s)) {
            reject("uses state " + std::string(stateName(s)) +
                       " outside the class",
                   false);
            continue;
        }
        for (LocalEvent ev : kAllLocalEvents) {
            const LocalCell &cell = table.local(s, ev);
            const LocalCell &allowed = klass.local(s, ev);
            for (std::size_t i = 0; i < cell.size(); ++i) {
                bool ok = false;
                for (const LocalAction &m : allowed)
                    ok = ok || localMatches(m, cell[i]);
                if (!ok) {
                    reject(strprintf(
                               "local[%s,%s] alt %zu matches no class "
                               "alternative",
                               std::string(stateName(s)).c_str(),
                               std::string(localEventName(ev)).c_str(),
                               i),
                           false);
                }
            }
        }
        for (BusEvent ev : kAllBusEvents) {
            const SnoopCell &cell = table.snoop(s, ev);
            const SnoopCell &allowed = klass.snoop(s, ev);
            for (std::size_t i = 0; i < cell.size(); ++i) {
                bool ok = false;
                for (const SnoopAction &m : allowed)
                    ok = ok || snoopMatches(m, cell[i]);
                if (!ok) {
                    bool busy_ok = busyImplementable(s, cell[i]);
                    reject(strprintf(
                               "snoop[%s,col%d] alt %zu matches no "
                               "class alternative",
                               std::string(stateName(s)).c_str(),
                               busEventColumn(ev), i),
                           busy_ok);
                }
            }
        }
    }
    return out;
}

} // namespace fbsim
