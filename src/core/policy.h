/**
 * @file
 * Action selection within the MOESI class of protocols.
 *
 * Tables 1 and 2 define, for many (state, event) pairs, a *choice* of
 * legal actions; section 3.4 stresses that each bus client can make
 * that choice statically, dynamically, per page, or even at random,
 * without breaking consistency.  fbsim represents the choice as an
 * ActionChooser:
 *
 *   - PreferredChooser: always the paper's preferred (first) entry;
 *   - PolicyChooser:    a MoesiPolicy selects along the named choice
 *                       points and applies the paper's notes 9-12
 *                       weakenings;
 *   - RandomChooser:    a different uniformly random legal action at
 *                       every decision (the paper's "extreme case");
 *   - SequenceChooser:  every decision is *driven* from an external
 *                       ChoiceSource, so an enumerator or a replayer
 *                       can inject an explicit choice sequence.
 */

#ifndef FBSIM_CORE_POLICY_H_
#define FBSIM_CORE_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "core/actions.h"

namespace fbsim {

/**
 * The named choice points of the MOESI class, plus the notes 9-12
 * weakenings, as a static per-cache configuration.
 */
struct MoesiPolicy
{
    /** Local write to O/S data: broadcast the change or invalidate the
     *  other copies. */
    enum class SharedWrite { Broadcast, Invalidate };

    /** Write miss: one read-for-ownership transaction, or a read
     *  followed by a separate write. */
    enum class MissWrite { ReadForOwnership, ReadThenWrite };

    /** Snooped broadcast write to a line we hold: update our copy or
     *  invalidate it. */
    enum class SnoopedBroadcast { Update, Invalidate };

    SharedWrite sharedWrite = SharedWrite::Broadcast;
    MissWrite missWrite = MissWrite::ReadForOwnership;
    SnoopedBroadcast snoopedBroadcast = SnoopedBroadcast::Update;

    /** Note 10 off-switch: replace CH:S/E with S (never enter E). */
    bool useExclusive = true;

    /** Note 9 off-switch: replace CH:O/M with O (never reclaim M). */
    bool useOwnedReclaim = true;

    /** Note 11: on bus events, drop to I instead of staying E/S. */
    bool dropOnSnoop = false;

    /** Note 12: enter M wherever the table says E (forces write-back of
     *  clean lines; models caches without a distinct E encoding). */
    bool exclusiveAsModified = false;

    /** Assert BC on Pass/Flush pushes ("BC?" entries). */
    bool broadcastPush = false;

    /** Write-through caches only: allocate on a write miss by reading
     *  first (the table's "Read>Write*" alternative). */
    bool wtWriteAllocate = false;

    /** The paper's preferred configuration (first table entries). */
    static MoesiPolicy preferred() { return {}; }

    /** A Berkeley-flavoured policy: no E, invalidating writes. */
    static MoesiPolicy
    berkeleyLike()
    {
        MoesiPolicy p;
        p.sharedWrite = SharedWrite::Invalidate;
        p.useExclusive = false;
        return p;
    }

    /** A Dragon-flavoured policy: update-based, uses E. */
    static MoesiPolicy
    dragonLike()
    {
        MoesiPolicy p;
        p.sharedWrite = SharedWrite::Broadcast;
        p.missWrite = MissWrite::ReadThenWrite;
        return p;
    }
};

/** Apply the policy's notes 9/10/12 weakenings to a result state. */
StateSpec applyStateWeakenings(const MoesiPolicy &policy,
                               StateSpec spec);

/**
 * Strategy interface deciding which legal alternative a cache takes.
 *
 * The spans passed in are the table cell's alternatives, already
 * filtered to the client's kind; they are never empty.  Implementations
 * return a *copy* of the chosen action, which they may legally weaken
 * (notes 9-12).
 */
class ActionChooser
{
  public:
    virtual ~ActionChooser() = default;

    /** Pick the action for a local processor event.  `alts` is already
     *  filtered to the client kind and never empty. */
    virtual LocalAction chooseLocal(ClientKind kind, State s,
                                    LocalEvent ev,
                                    std::span<const LocalAction> alts) = 0;

    /** Pick the response to a snooped bus event. */
    virtual SnoopAction chooseSnoop(ClientKind kind, State s, BusEvent ev,
                                    std::span<const SnoopAction> alts) = 0;

    /**
     * True when the choice is a pure function of (kind, state, event,
     * alts).  Caches memoize such choices per (state, event) and skip
     * the table walk and virtual dispatch on the snoop hot path; a
     * stateful chooser (random action selection) must return false.
     */
    virtual bool deterministic() const { return true; }
};

/** Always the paper's preferred (first) alternative. */
class PreferredChooser : public ActionChooser
{
  public:
    LocalAction chooseLocal(ClientKind kind, State s, LocalEvent ev,
                            std::span<const LocalAction> alts) override;
    SnoopAction chooseSnoop(ClientKind kind, State s, BusEvent ev,
                            std::span<const SnoopAction> alts) override;
};

/** Selection directed by a MoesiPolicy. */
class PolicyChooser : public ActionChooser
{
  public:
    explicit PolicyChooser(const MoesiPolicy &policy) : policy_(policy) {}

    const MoesiPolicy &policy() const { return policy_; }

    LocalAction chooseLocal(ClientKind kind, State s, LocalEvent ev,
                            std::span<const LocalAction> alts) override;
    SnoopAction chooseSnoop(ClientKind kind, State s, BusEvent ev,
                            std::span<const SnoopAction> alts) override;

  private:
    MoesiPolicy policy_;
};

/**
 * A uniformly random legal alternative at every decision - the paper's
 * section 3.4 extreme case, used by the compatibility property tests.
 */
class RandomChooser : public ActionChooser
{
  public:
    explicit RandomChooser(std::uint64_t seed) : rng_(seed) {}

    LocalAction chooseLocal(ClientKind kind, State s, LocalEvent ev,
                            std::span<const LocalAction> alts) override;
    SnoopAction chooseSnoop(ClientKind kind, State s, BusEvent ev,
                            std::span<const SnoopAction> alts) override;
    bool deterministic() const override { return false; }

  private:
    Rng rng_;
};

/**
 * Where a SequenceChooser's decisions come from.  pick() is called
 * once per chooser consultation - i.e. once for *every* non-empty
 * table cell the cache walks, singleton cells included - so a recorded
 * stream replays position-for-position against any consumer that
 * walks the same cells in the same order (the model checker's
 * transition executor is written to match the engine cell-for-cell).
 */
class ChoiceSource
{
  public:
    virtual ~ChoiceSource() = default;

    /** Index of the chosen alternative; must be < n_alts (n_alts >= 1). */
    virtual std::size_t pick(std::size_t n_alts) = 0;
};

/** Uniform random choices from a seeded Rng (tape-free fuzzing that a
 *  model driven from an equally-seeded source can mirror exactly). */
class RngChoiceSource : public ChoiceSource
{
  public:
    explicit RngChoiceSource(std::uint64_t seed) : rng_(seed) {}

    std::size_t
    pick(std::size_t n_alts) override
    {
        return static_cast<std::size_t>(rng_.below(n_alts));
    }

  private:
    Rng rng_;
};

/**
 * A pre-recorded choice script (counterexample replay).  Indices out
 * of range for the presented cell, or consultations past the end of
 * the script, fall back to alternative 0 and are counted in
 * overruns() - a replayed trace that stays aligned never overruns.
 */
class ScriptChoiceSource : public ChoiceSource
{
  public:
    explicit ScriptChoiceSource(std::vector<std::uint8_t> script)
        : script_(std::move(script))
    {
    }

    std::size_t
    pick(std::size_t n_alts) override
    {
        if (pos_ >= script_.size()) {
            ++overruns_;
            return 0;
        }
        std::size_t idx = script_[pos_++];
        if (idx >= n_alts) {
            ++overruns_;
            return 0;
        }
        return idx;
    }

    /** Script entries consumed so far. */
    std::size_t consumed() const { return pos_; }

    /** Picks that ran past the script or presented a short cell. */
    std::size_t overruns() const { return overruns_; }

  private:
    std::vector<std::uint8_t> script_;
    std::size_t pos_ = 0;
    std::size_t overruns_ = 0;
};

/**
 * Driven selection: every decision comes from a ChoiceSource.  This is
 * the injection point the section 3.4 enumeration machinery needs -
 * PreferredChooser/PolicyChooser/RandomChooser only ever *draw*
 * choices; this chooser lets a model checker or replayer *dictate*
 * them.  deterministic() is false so caches neither memoize the first
 * decision nor take the fast local-hit path (both would skip
 * consultations and desynchronise the stream).  The source must
 * outlive the chooser.
 */
class SequenceChooser : public ActionChooser
{
  public:
    explicit SequenceChooser(ChoiceSource &source) : source_(source) {}

    LocalAction
    chooseLocal(ClientKind, State, LocalEvent,
                std::span<const LocalAction> alts) override
    {
        return alts[source_.pick(alts.size())];
    }

    SnoopAction
    chooseSnoop(ClientKind, State, BusEvent,
                std::span<const SnoopAction> alts) override
    {
        return alts[source_.pick(alts.size())];
    }

    bool deterministic() const override { return false; }

  private:
    ChoiceSource &source_;
};

} // namespace fbsim

#endif // FBSIM_CORE_POLICY_H_
