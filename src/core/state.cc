#include "core/state.h"

namespace fbsim {

std::optional<State>
stateFromAttributes(const StateAttributes &attrs)
{
    if (!attrs.valid) {
        // Exclusiveness/ownership of invalid data is pointless; only the
        // all-false combination denotes a real state.
        if (attrs.exclusive || attrs.owned)
            return std::nullopt;
        return State::I;
    }
    if (attrs.exclusive)
        return attrs.owned ? State::M : State::E;
    return attrs.owned ? State::O : State::S;
}

std::string_view
stateName(State s)
{
    switch (s) {
      case State::M: return "M";
      case State::O: return "O";
      case State::E: return "E";
      case State::S: return "S";
      case State::I: return "I";
    }
    return "?";
}

std::string_view
stateLongName(State s)
{
    switch (s) {
      case State::M: return "Exclusive owned";
      case State::O: return "Shareable owned";
      case State::E: return "Exclusive unowned";
      case State::S: return "Shareable unowned";
      case State::I: return "Invalid";
    }
    return "?";
}

std::string_view
stateModifiedName(State s)
{
    switch (s) {
      case State::M: return "Exclusive modified";
      case State::O: return "Shareable modified";
      case State::E: return "Exclusive unmodified";
      case State::S: return "Shareable unmodified";
      case State::I: return "Invalid";
    }
    return "?";
}

std::optional<State>
stateFromName(std::string_view name)
{
    if (name.size() != 1)
        return std::nullopt;
    switch (name[0]) {
      case 'M': return State::M;
      case 'O': return State::O;
      case 'E': return State::E;
      case 'S': return State::S;
      case 'I': return State::I;
      case 'V': return State::S;   // write-through "valid" maps to S
      default:  return std::nullopt;
    }
}

} // namespace fbsim
