/**
 * @file
 * Transcription of Table 3: the Berkeley (SPUR) protocol [Katz85] on
 * the Futurebus.  States M, O, S, I - there is no E state; read misses
 * always load into S and all writes to shared data invalidate with an
 * address-only transaction.
 *
 * As in the paper, the CH signal is generated for compatibility with
 * the MOESI mechanism (the original protocol does not use it).
 *
 * Beyond the published rows/columns (local Read/Write, bus columns 5
 * and 6) this table carries the cells a running cache needs (replacement
 * Flush/Pass) and, since the paper shows Berkeley falls within the
 * MOESI class, the foreign-event columns 7-10 filled with the class's
 * preferred actions (with E degraded to S per the paper's note 10,
 * because Berkeley has no E row).  The table benches render only the
 * published cells.
 */

#include "core/protocol_table.h"
#include "core/table_builders.h"

namespace fbsim {

using namespace table_builders;

namespace {

ProtocolTable
buildBerkeleyTable()
{
    ProtocolTable t("Berkeley",
                    {State::M, State::O, State::S, State::I});

    // Local events (published: Read, Write).
    t.setLocal(State::M, LocalEvent::Read, {stay(State::M)});
    t.setLocal(State::M, LocalEvent::Write, {stay(State::M)});
    t.setLocal(State::O, LocalEvent::Read, {stay(State::O)});
    t.setLocal(State::O, LocalEvent::Write,
               {issue(toState(State::M), CA_IM, BusCmd::AddrOnly)});
    t.setLocal(State::S, LocalEvent::Read, {stay(State::S)});
    t.setLocal(State::S, LocalEvent::Write,
               {issue(toState(State::M), CA_IM, BusCmd::AddrOnly)});
    t.setLocal(State::I, LocalEvent::Read,
               {issue(toState(State::S), CA, BusCmd::Read)});
    t.setLocal(State::I, LocalEvent::Write,
               {issue(toState(State::M), CA_IM, BusCmd::Read)});

    // Replacement support (not shown in Table 3): dirty lines are
    // pushed; S is dropped silently.  A Pass from M/O keeps the copy in
    // S (no E row to enter).
    t.setLocal(State::M, LocalEvent::Pass,
               {issue(toState(State::S), CA, BusCmd::WriteLine)});
    t.setLocal(State::M, LocalEvent::Flush,
               {issue(toState(State::I), NONE, BusCmd::WriteLine)});
    t.setLocal(State::O, LocalEvent::Pass,
               {issue(toState(State::S), CA, BusCmd::WriteLine)});
    t.setLocal(State::O, LocalEvent::Flush,
               {issue(toState(State::I), NONE, BusCmd::WriteLine)});
    t.setLocal(State::S, LocalEvent::Flush, {stay(State::I)});

    // Bus events (published: columns 5 and 6).
    t.setSnoop(State::M, BusEvent::ReadByCache,
               {respond(toState(State::O), Tri::Assert, true)});
    t.setSnoop(State::M, BusEvent::ReadForModify,
               {respond(toState(State::I), Tri::No, true)});
    t.setSnoop(State::O, BusEvent::ReadByCache,
               {respond(toState(State::O), Tri::Assert, true)});
    t.setSnoop(State::O, BusEvent::ReadForModify,
               {respond(toState(State::I), Tri::No, true)});
    t.setSnoop(State::S, BusEvent::ReadByCache,
               {respond(toState(State::S), Tri::Assert)});
    t.setSnoop(State::S, BusEvent::ReadForModify,
               {respond(toState(State::I))});
    t.setSnoop(State::I, BusEvent::ReadByCache,
               {respond(toState(State::I))});
    t.setSnoop(State::I, BusEvent::ReadForModify,
               {respond(toState(State::I))});

    // Foreign-event extension (columns 7-10), MOESI-preferred actions.
    t.setSnoop(State::M, BusEvent::ReadNoCache,
               {respond(toState(State::M), Tri::DontCare, true)});
    t.setSnoop(State::M, BusEvent::WriteNoCache,
               {respond(toState(State::M), Tri::DontCare, true)});
    t.setSnoop(State::M, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::M), Tri::DontCare, false, true)});
    t.setSnoop(State::O, BusEvent::ReadNoCache,
               {respond(kChOM, Tri::No, true)});
    t.setSnoop(State::O, BusEvent::BroadcastWriteCache,
               {respond(toState(State::S), Tri::Assert, false, true),
                respond(toState(State::I))});
    t.setSnoop(State::O, BusEvent::WriteNoCache,
               {respond(toState(State::O), Tri::DontCare, true)});
    t.setSnoop(State::O, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::O), Tri::Assert, false, true)});
    t.setSnoop(State::S, BusEvent::ReadNoCache,
               {respond(toState(State::S), Tri::Assert)});
    t.setSnoop(State::S, BusEvent::BroadcastWriteCache,
               {respond(toState(State::S), Tri::Assert, false, true),
                respond(toState(State::I))});
    t.setSnoop(State::S, BusEvent::WriteNoCache,
               {respond(toState(State::I))});
    t.setSnoop(State::S, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::S), Tri::Assert, false, true),
                respond(toState(State::I))});
    for (BusEvent ev :
         {BusEvent::ReadNoCache, BusEvent::BroadcastWriteCache,
          BusEvent::WriteNoCache, BusEvent::BroadcastWriteNoCache}) {
        t.setSnoop(State::I, ev, {respond(toState(State::I))});
    }

    return t;
}

} // namespace

const ProtocolTable &
berkeleyTable()
{
    static const ProtocolTable table = buildBerkeleyTable();
    return table;
}

} // namespace fbsim
