/**
 * @file
 * Transcription of Table 5: Goodman's Write-Once protocol [Good83],
 * adapted to the Futurebus.  States M ("dirty"), E ("reserved"),
 * S ("valid"), I.  The first write to a valid line is written through
 * (entering E); the second dirties it locally (M).
 *
 * Write-Once as defined requires memory to be updated while an
 * intervenient cache supplies data, which the Futurebus cannot do; as
 * in the paper, intervention on column 5 is replaced with a BS abort, a
 * push of the dirty line to memory, and a retry of the aborted
 * transaction ("BS;S,CA,W").  For column 6 the paper notes the original
 * definition is ambiguous and shows both readings ("I,DI or
 * BS;S,CA,W"); both are encoded, supply-and-invalidate first.
 *
 * Write-Once is NOT a member of the MOESI class (its S-write leaves an
 * unowned E copy whose correctness depends on memory being current,
 * which only holds in homogeneous Write-Once systems); see
 * core/compat.h.  The foreign-event extension cells below make the
 * engine total, but mixing it with owner-based protocols is checked and
 * flagged by the compatibility validator.
 */

#include "core/protocol_table.h"
#include "core/table_builders.h"

namespace fbsim {

using namespace table_builders;

namespace {

ProtocolTable
buildWriteOnceTable()
{
    ProtocolTable t("Write-Once",
                    {State::M, State::E, State::S, State::I});

    // Local events (published: Read, Write).
    t.setLocal(State::M, LocalEvent::Read, {stay(State::M)});
    t.setLocal(State::M, LocalEvent::Write, {stay(State::M)});
    t.setLocal(State::E, LocalEvent::Read, {stay(State::E)});
    t.setLocal(State::E, LocalEvent::Write, {stay(State::M)});
    t.setLocal(State::S, LocalEvent::Read, {stay(State::S)});
    // The "write once": write through and reserve the line.
    t.setLocal(State::S, LocalEvent::Write,
               {issue(toState(State::E), CA_IM, BusCmd::WriteWord)});
    t.setLocal(State::I, LocalEvent::Read,
               {issue(toState(State::S), CA, BusCmd::Read)});
    t.setLocal(State::I, LocalEvent::Write,
               {issue(toState(State::M), CA_IM, BusCmd::Read),
                readThenWrite()});

    // Replacement support.
    t.setLocal(State::M, LocalEvent::Pass,
               {issue(toState(State::E), CA, BusCmd::WriteLine)});
    t.setLocal(State::M, LocalEvent::Flush,
               {issue(toState(State::I), NONE, BusCmd::WriteLine)});
    t.setLocal(State::E, LocalEvent::Flush, {stay(State::I)});
    t.setLocal(State::S, LocalEvent::Flush, {stay(State::I)});

    // Bus events (published: columns 5 and 6).
    t.setSnoop(State::M, BusEvent::ReadByCache, {abortPush(State::S)});
    t.setSnoop(State::M, BusEvent::ReadForModify,
               {respond(toState(State::I), Tri::No, true),
                abortPush(State::S)});
    t.setSnoop(State::E, BusEvent::ReadByCache,
               {respond(toState(State::S), Tri::Assert)});
    t.setSnoop(State::E, BusEvent::ReadForModify,
               {respond(toState(State::I))});
    t.setSnoop(State::S, BusEvent::ReadByCache,
               {respond(toState(State::S), Tri::Assert)});
    t.setSnoop(State::S, BusEvent::ReadForModify,
               {respond(toState(State::I))});
    t.setSnoop(State::I, BusEvent::ReadByCache,
               {respond(toState(State::I))});
    t.setSnoop(State::I, BusEvent::ReadForModify,
               {respond(toState(State::I))});

    // Foreign-event extension (columns 7-10).
    t.setSnoop(State::M, BusEvent::ReadNoCache,
               {respond(toState(State::M), Tri::DontCare, true)});
    t.setSnoop(State::M, BusEvent::WriteNoCache,
               {respond(toState(State::M), Tri::DontCare, true)});
    t.setSnoop(State::M, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::M), Tri::DontCare, false, true)});
    t.setSnoop(State::E, BusEvent::ReadNoCache,
               {respond(toState(State::E), Tri::DontCare)});
    t.setSnoop(State::E, BusEvent::WriteNoCache,
               {respond(toState(State::I))});
    t.setSnoop(State::E, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::E), Tri::DontCare, false, true),
                respond(toState(State::I))});
    t.setSnoop(State::S, BusEvent::ReadNoCache,
               {respond(toState(State::S), Tri::Assert)});
    t.setSnoop(State::S, BusEvent::BroadcastWriteCache,
               {respond(toState(State::S), Tri::Assert, false, true),
                respond(toState(State::I))});
    t.setSnoop(State::S, BusEvent::WriteNoCache,
               {respond(toState(State::I))});
    t.setSnoop(State::S, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::S), Tri::Assert, false, true),
                respond(toState(State::I))});
    for (BusEvent ev :
         {BusEvent::ReadNoCache, BusEvent::BroadcastWriteCache,
          BusEvent::WriteNoCache, BusEvent::BroadcastWriteNoCache}) {
        t.setSnoop(State::I, ev, {respond(toState(State::I))});
    }

    return t;
}

} // namespace

const ProtocolTable &
writeOnceTable()
{
    static const ProtocolTable table = buildWriteOnceTable();
    return table;
}

} // namespace fbsim
