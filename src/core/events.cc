#include "core/events.h"

#include "common/logging.h"

namespace fbsim {

int
busEventColumn(BusEvent ev)
{
    switch (ev) {
      case BusEvent::ReadByCache:           return 5;
      case BusEvent::ReadForModify:         return 6;
      case BusEvent::ReadNoCache:           return 7;
      case BusEvent::BroadcastWriteCache:   return 8;
      case BusEvent::WriteNoCache:          return 9;
      case BusEvent::BroadcastWriteNoCache: return 10;
      case BusEvent::Push:                  return 0;
      case BusEvent::Sync:                  return 0;
    }
    return 0;
}

std::optional<BusEvent>
classifyBusEvent(BusCmd cmd, const MasterSignals &sig)
{
    switch (cmd) {
      case BusCmd::Read:
        // Reads never broadcast modifications.
        if (sig.bc)
            return std::nullopt;
        if (sig.ca) {
            return sig.im ? BusEvent::ReadForModify
                          : BusEvent::ReadByCache;
        }
        if (sig.im)
            return std::nullopt;
        return BusEvent::ReadNoCache;

      case BusCmd::AddrOnly:
        // The only address-only transaction in the class is the
        // invalidate, which shares column 6 with the read-for-modify.
        if (sig.ca && sig.im && !sig.bc)
            return BusEvent::ReadForModify;
        return std::nullopt;

      case BusCmd::WriteWord:
        if (!sig.im)
            return std::nullopt;   // data writes always signal intent
        if (sig.ca) {
            // CA,IM,~BC with a data phase is the Write-Once protocol's
            // write-through-with-invalidate; the column is determined by
            // the signals alone, so snoopers see it as column 6.
            return sig.bc ? BusEvent::BroadcastWriteCache
                          : BusEvent::ReadForModify;
        }
        return sig.bc ? BusEvent::BroadcastWriteNoCache
                      : BusEvent::WriteNoCache;

      case BusCmd::WriteLine:
        // A push: write of a whole dirty line back to memory by its
        // (unique) owner.  CA asserted on a Pass (copy retained), clear
        // on a Flush.  Holders respond only with CH; no state changes.
        if (!sig.im)
            return BusEvent::Push;
        return std::nullopt;

      case BusCmd::Sync:
        // The section 6 consistency command.  IM selects the purge
        // variant (invalidate every copy); BC is meaningless.
        if (sig.bc)
            return std::nullopt;
        return BusEvent::Sync;
    }
    return std::nullopt;
}

MasterSignals
signalsForBusEvent(BusEvent ev)
{
    switch (ev) {
      case BusEvent::ReadByCache:           return {true, false, false};
      case BusEvent::ReadForModify:         return {true, true, false};
      case BusEvent::ReadNoCache:           return {false, false, false};
      case BusEvent::BroadcastWriteCache:   return {true, true, true};
      case BusEvent::WriteNoCache:          return {false, true, false};
      case BusEvent::BroadcastWriteNoCache: return {false, true, true};
      case BusEvent::Push:                  return {true, false, false};
      case BusEvent::Sync:                  return {false, false, false};
    }
    return {};
}

std::string
masterSignalsName(const MasterSignals &sig)
{
    std::string out;
    out += sig.ca ? "CA" : "~CA";
    out += sig.im ? ",IM" : ",~IM";
    out += sig.bc ? ",BC" : ",~BC";
    return out;
}

std::string_view
localEventName(LocalEvent ev)
{
    switch (ev) {
      case LocalEvent::Read:  return "Read";
      case LocalEvent::Write: return "Write";
      case LocalEvent::Pass:  return "Pass";
      case LocalEvent::Flush: return "Flush";
    }
    return "?";
}

} // namespace fbsim
