/**
 * @file
 * Mechanical verification of the paper's compatibility claims.
 *
 * Section 3.4 defines the *class* of compatible protocols: any protocol
 * whose every action is one of the alternatives of Tables 1 and 2
 * (possibly weakened by notes 9-12) may coexist with any other member
 * on the same bus.  Section 4 then claims:
 *
 *   - Berkeley and Dragon fall within the class (Tables 3 and 4);
 *   - Write-Once, Illinois and Firefly do not, and need the BS
 *     abort/push/retry adaptation even to run on the Futurebus at all
 *     (Tables 5-7).
 *
 * checkClassMembership() verifies these statements cell by cell against
 * the encoded tables; the claims become unit tests.
 *
 * The note-based weakenings induce a "spontaneous demotion" preorder on
 * states: M may demote to O (note 9); E may demote to S (10) or be
 * implemented as M (12, hence transitively O); an unowned line may be
 * dropped to I at any time (silent eviction / note 11).  A result state
 * is acceptable when it is a legal demotion of what Table 1/2
 * prescribes.
 */

#ifndef FBSIM_CORE_COMPAT_H_
#define FBSIM_CORE_COMPAT_H_

#include <string>
#include <vector>

#include "core/protocol_table.h"

namespace fbsim {

/** Result of a class-membership check. */
struct ClassMembership
{
    /** Every action is a (possibly weakened) Table 1/2 alternative. */
    bool member = false;

    /**
     * Like member, but BS abort/push/retry responses are additionally
     * accepted when the push is itself a legal Pass (the Futurebus
     * adaptation of section 4).  Protocols that are implementable but
     * not members (e.g. adapted Illinois) satisfy this.
     */
    bool implementableWithBusy = false;

    /** Human-readable description of each non-member cell/action. */
    std::vector<std::string> violations;

    /** Violations remaining when BS responses are accepted. */
    std::vector<std::string> violationsWithBusy;
};

/**
 * True iff state `actual` is a legal spontaneous demotion of state
 * `prescribed` (reflexive).
 */
bool isLegalDemotion(State prescribed, State actual);

/** Check a protocol table against the MOESI class definition. */
ClassMembership checkClassMembership(const ProtocolTable &table);

} // namespace fbsim

#endif // FBSIM_CORE_COMPAT_H_
