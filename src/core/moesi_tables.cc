/**
 * @file
 * Transcription of Tables 1 and 2 of the paper: the MOESI class of
 * compatible consistency protocols, as result state + bus signals for
 * every (state, event) pair.  Where the paper shows a choice ("or"
 * entries, "BC?"), every alternative is encoded and the first is the
 * paper's preferred one.  Entries marked "*" (write-through cache) and
 * "**" (no cache) carry the corresponding ClientKind mask.
 */

#include "core/protocol_table.h"
#include "core/table_builders.h"

namespace fbsim {

using namespace table_builders;

namespace {

ProtocolTable
buildMoesiTable()
{
    ProtocolTable t("MOESI",
                    {State::M, State::O, State::E, State::S, State::I});

    // ---------------- Table 1: local events -------------------------

    // M row: hits stay M; Pass writes the line back keeping an (again
    // exclusive) copy; Flush writes back and discards.  The pushes may
    // optionally broadcast ("BC?"); non-broadcast is preferred since
    // broadcast transactions pay the wired-OR glitch penalty.
    t.setLocal(State::M, LocalEvent::Read, {stay(State::M)});
    t.setLocal(State::M, LocalEvent::Write, {stay(State::M)});
    t.setLocal(State::M, LocalEvent::Pass,
               {issue(toState(State::E), CA, BusCmd::WriteLine),
                issue(toState(State::E), {true, false, true},
                      BusCmd::WriteLine)});
    t.setLocal(State::M, LocalEvent::Flush,
               {issue(toState(State::I), NONE, BusCmd::WriteLine),
                issue(toState(State::I), {false, false, true},
                      BusCmd::WriteLine)});

    // O row: a write to shareable owned data must either broadcast the
    // change (staying O, or reclaiming M if nobody retains a copy) or
    // invalidate the other copies with an address-only transaction.
    t.setLocal(State::O, LocalEvent::Read, {stay(State::O)});
    t.setLocal(State::O, LocalEvent::Write,
               {issue(kChOM, CA_IM_BC, BusCmd::WriteWord),
                issue(toState(State::M), CA_IM, BusCmd::AddrOnly)});
    t.setLocal(State::O, LocalEvent::Pass,
               {issue(kChSE, CA, BusCmd::WriteLine),
                issue(kChSE, {true, false, true}, BusCmd::WriteLine)});
    t.setLocal(State::O, LocalEvent::Flush,
               {issue(toState(State::I), NONE, BusCmd::WriteLine),
                issue(toState(State::I), {false, false, true},
                      BusCmd::WriteLine)});

    // E row: silent upgrade on write (the whole point of E); clean data
    // is discarded without bus traffic.  Pass of a clean line is not a
    // legal case.
    t.setLocal(State::E, LocalEvent::Read, {stay(State::E)});
    t.setLocal(State::E, LocalEvent::Write, {stay(State::M)});
    t.setLocal(State::E, LocalEvent::Flush, {stay(State::I)});

    // S row: copy-back caches behave as for O (minus ownership); the
    // "*" alternatives are the write-through cache writing through with
    // or without broadcast (a write-through cache's V state is S).
    {
        // A read hit in S applies to copy-back and write-through caches
        // alike (the write-through V state is S).
        LocalAction s_read = stay(State::S);
        s_read.kinds = kCB | kWT;
        t.setLocal(State::S, LocalEvent::Read, {s_read});
    }
    {
        LocalCell cell;
        cell.push_back(issue(kChOM, CA_IM_BC, BusCmd::WriteWord));
        cell.push_back(issue(toState(State::M), CA_IM, BusCmd::AddrOnly));
        cell.push_back(issue(toState(State::S), IM_BC, BusCmd::WriteWord,
                             kWT));
        cell.push_back(issue(toState(State::S), IM, BusCmd::WriteWord,
                             kWT));
        t.setLocal(State::S, LocalEvent::Write, cell);
    }
    {
        LocalAction flush = stay(State::I);
        flush.kinds = kCB | kWT;
        t.setLocal(State::S, LocalEvent::Flush, {flush});
    }

    // I row: a read miss loads into S or E depending on CH ("*": a
    // write-through cache always loads into S; "**": a non-caching
    // processor reads without asserting CA).  A write miss either
    // requests the copy and invalidates others simultaneously
    // (read-with-intent-to-modify) or uses two transactions.
    {
        LocalCell cell;
        cell.push_back(issue(kChSE, CA, BusCmd::Read));
        cell.push_back(issue(toState(State::S), CA, BusCmd::Read, kWT));
        cell.push_back(issue(toState(State::I), NONE, BusCmd::Read, kNC));
        t.setLocal(State::I, LocalEvent::Read, cell);
    }
    {
        LocalCell cell;
        cell.push_back(issue(toState(State::M), CA_IM, BusCmd::Read));
        cell.push_back(readThenWrite());
        cell.push_back(issue(toState(State::I), IM_BC, BusCmd::WriteWord,
                             kWT | kNC));
        cell.push_back(issue(toState(State::I), IM, BusCmd::WriteWord,
                             kWT | kNC));
        cell.push_back(readThenWrite(kWT));
        t.setLocal(State::I, LocalEvent::Write, cell);
    }

    // ---------------- Table 2: bus events ---------------------------

    // M row.
    t.setSnoop(State::M, BusEvent::ReadByCache,
               {respond(toState(State::O), Tri::Assert, true)});
    t.setSnoop(State::M, BusEvent::ReadForModify,
               {respond(toState(State::I), Tri::No, true)});
    t.setSnoop(State::M, BusEvent::ReadNoCache,
               {respond(toState(State::M), Tri::DontCare, true)});
    // col 8 is not a legal case from M: a broadcast write by another
    // cache master implies it holds a copy, contradicting exclusivity.
    t.setSnoop(State::M, BusEvent::WriteNoCache,
               {respond(toState(State::M), Tri::DontCare, true)});
    t.setSnoop(State::M, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::M), Tri::DontCare, false, true)});

    // O row.  On a read by a non-caching master (col 7) the owner does
    // not drive CH itself and listens: if no other cache retains a copy
    // it silently reclaims M.
    t.setSnoop(State::O, BusEvent::ReadByCache,
               {respond(toState(State::O), Tri::Assert, true)});
    t.setSnoop(State::O, BusEvent::ReadForModify,
               {respond(toState(State::I), Tri::No, true)});
    t.setSnoop(State::O, BusEvent::ReadNoCache,
               {respond(kChOM, Tri::No, true)});
    t.setSnoop(State::O, BusEvent::BroadcastWriteCache,
               {respond(toState(State::S), Tri::Assert, false, true),
                respond(toState(State::I))});
    t.setSnoop(State::O, BusEvent::WriteNoCache,
               {respond(toState(State::O), Tri::DontCare, true)});
    t.setSnoop(State::O, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::O), Tri::Assert, false, true)});

    // E row.
    t.setSnoop(State::E, BusEvent::ReadByCache,
               {respond(toState(State::S), Tri::Assert)});
    t.setSnoop(State::E, BusEvent::ReadForModify,
               {respond(toState(State::I))});
    t.setSnoop(State::E, BusEvent::ReadNoCache,
               {respond(toState(State::E), Tri::DontCare)});
    // col 8 illegal from E (exclusivity), as for M.
    t.setSnoop(State::E, BusEvent::WriteNoCache,
               {respond(toState(State::I))});
    t.setSnoop(State::E, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::E), Tri::DontCare, false, true),
                respond(toState(State::I))});

    // S row.
    t.setSnoop(State::S, BusEvent::ReadByCache,
               {respond(toState(State::S), Tri::Assert)});
    t.setSnoop(State::S, BusEvent::ReadForModify,
               {respond(toState(State::I))});
    t.setSnoop(State::S, BusEvent::ReadNoCache,
               {respond(toState(State::S), Tri::Assert)});
    t.setSnoop(State::S, BusEvent::BroadcastWriteCache,
               {respond(toState(State::S), Tri::Assert, false, true),
                respond(toState(State::I))});
    t.setSnoop(State::S, BusEvent::WriteNoCache,
               {respond(toState(State::I))});
    t.setSnoop(State::S, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::S), Tri::Assert, false, true),
                respond(toState(State::I))});

    // I row: invalid data is unaffected by any bus event.
    for (BusEvent ev : kAllBusEvents)
        t.setSnoop(State::I, ev, {respond(toState(State::I))});

    return t;
}

} // namespace

const ProtocolTable &
moesiTable()
{
    static const ProtocolTable table = buildMoesiTable();
    return table;
}

} // namespace fbsim
