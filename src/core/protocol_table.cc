#include "core/protocol_table.h"

#include <algorithm>

#include "common/logging.h"

namespace fbsim {

ProtocolTable::ProtocolTable(std::string name, std::vector<State> states)
    : name_(std::move(name)), states_(std::move(states))
{
}

bool
ProtocolTable::hasState(State s) const
{
    return std::find(states_.begin(), states_.end(), s) != states_.end();
}

void
ProtocolTable::setLocal(State s, LocalEvent ev, LocalCell cell)
{
    local_[stateIndex(s)][localIndex(ev)] = std::move(cell);
}

void
ProtocolTable::setSnoop(State s, BusEvent ev, SnoopCell cell)
{
    snoop_[stateIndex(s)][busIndex(ev)] = std::move(cell);
}

void
ProtocolTable::addLocal(State s, LocalEvent ev, const LocalAction &a)
{
    local_[stateIndex(s)][localIndex(ev)].push_back(a);
}

void
ProtocolTable::addSnoop(State s, BusEvent ev, const SnoopAction &a)
{
    snoop_[stateIndex(s)][busIndex(ev)].push_back(a);
}

const LocalCell &
ProtocolTable::local(State s, LocalEvent ev) const
{
    return local_[stateIndex(s)][localIndex(ev)];
}

const SnoopCell &
ProtocolTable::snoop(State s, BusEvent ev) const
{
    return snoop_[stateIndex(s)][busIndex(ev)];
}

std::vector<std::string>
ProtocolTable::validate() const
{
    std::vector<std::string> problems;
    auto complain = [&](const std::string &msg) {
        problems.push_back(name_ + ": " + msg);
    };

    auto checkResultState = [&](const StateSpec &spec,
                                const std::string &where) {
        for (State s : {spec.ifCh, spec.ifNotCh}) {
            if (!hasState(s)) {
                complain(where + ": result state " +
                         std::string(stateName(s)) +
                         " is not a row of this protocol");
            }
        }
    };

    for (State s : states_) {
        for (LocalEvent ev : kAllLocalEvents) {
            const LocalCell &cell = local(s, ev);
            for (std::size_t i = 0; i < cell.size(); ++i) {
                const LocalAction &a = cell[i];
                std::string where =
                    strprintf("local[%s,%s] alt %zu",
                              std::string(stateName(s)).c_str(),
                              std::string(localEventName(ev)).c_str(), i);
                if (a.readThenWrite) {
                    if (ev != LocalEvent::Write) {
                        complain(where +
                                 ": Read>Write outside a Write cell");
                    }
                    continue;
                }
                checkResultState(a.next, where);
                if (a.usesBus) {
                    MasterSignals sig{a.ca, a.im, a.bc};
                    if (!classifyBusEvent(a.cmd, sig)) {
                        complain(where + ": signals " +
                                 masterSignalsName(sig) +
                                 " illegal for this bus command");
                    }
                } else if (a.ca || a.im || a.bc) {
                    complain(where + ": signals asserted without a bus "
                                     "transaction");
                }
            }
        }
        for (BusEvent ev : kAllBusEvents) {
            const SnoopCell &cell = snoop(s, ev);
            for (std::size_t i = 0; i < cell.size(); ++i) {
                const SnoopAction &a = cell[i];
                std::string where =
                    strprintf("snoop[%s,col%d] alt %zu",
                              std::string(stateName(s)).c_str(),
                              busEventColumn(ev), i);
                if (a.bs) {
                    if (!isIntervenient(s)) {
                        complain(where +
                                 ": BS abort from a non-owner state");
                    }
                    if (!hasState(a.pushState))
                        complain(where + ": push result state not a row");
                    continue;
                }
                checkResultState(a.next, where);
                if (a.di && !isIntervenient(s))
                    complain(where + ": DI driven from a non-owner state");
            }
        }
    }
    return problems;
}

} // namespace fbsim
