/**
 * @file
 * Transcription of Table 7: the DEC SRC Firefly protocol (as defined in
 * [Arch85]), adapted to the Futurebus.  States M, E, S, I.  A write-
 * update protocol like Dragon, but without ownership: writes to S are
 * broadcast and the writer stays S (or upgrades to E when no other
 * cache responds CH - sharing is detected dynamically).
 *
 * Firefly requires memory to be updated when an intervenient cache
 * provides data; as in the paper this becomes a BS abort / push / retry
 * ("BS;E,CA,W": the pusher keeps its copy in E and the retried read
 * then finds memory current and the copy shared).  Firefly's S and E
 * are consistent with main memory, unlike the MOESI class's S, so
 * Firefly is not a class member (see core/compat.h).
 */

#include "core/protocol_table.h"
#include "core/table_builders.h"

namespace fbsim {

using namespace table_builders;

namespace {

ProtocolTable
buildFireflyTable()
{
    ProtocolTable t("Firefly",
                    {State::M, State::E, State::S, State::I});

    // Local events (published: Read, Write).
    t.setLocal(State::M, LocalEvent::Read, {stay(State::M)});
    t.setLocal(State::M, LocalEvent::Write, {stay(State::M)});
    t.setLocal(State::E, LocalEvent::Read, {stay(State::E)});
    t.setLocal(State::E, LocalEvent::Write, {stay(State::M)});
    t.setLocal(State::S, LocalEvent::Read, {stay(State::S)});
    // The published cell asserts CA on the broadcast.  In the class
    // convention CA on a broadcast write is the writer's claim that it
    // will own the line afterwards (Dragon's CH?O:M), which tells a
    // foreign owner it may stand down to S - but a Firefly writer
    // writes through and keeps at most a memory-consistent S copy, so
    // in a mixed system an owner that stands down orphans its line's
    // other dirty words (memory received only the broadcast word).
    // This is one concrete mechanism behind the paper's claim that
    // Firefly is NOT a class member: do not mix it with owner-based
    // protocols and expect coherence.
    t.setLocal(State::S, LocalEvent::Write,
               {issue(kChSE, CA_IM_BC, BusCmd::WriteWord)});
    t.setLocal(State::I, LocalEvent::Read,
               {issue(kChSE, CA, BusCmd::Read)});
    t.setLocal(State::I, LocalEvent::Write, {readThenWrite()});

    // Replacement support.
    t.setLocal(State::M, LocalEvent::Pass,
               {issue(toState(State::E), CA, BusCmd::WriteLine)});
    t.setLocal(State::M, LocalEvent::Flush,
               {issue(toState(State::I), NONE, BusCmd::WriteLine)});
    t.setLocal(State::E, LocalEvent::Flush, {stay(State::I)});
    t.setLocal(State::S, LocalEvent::Flush, {stay(State::I)});

    // Bus events (published: columns 5 and 8).
    t.setSnoop(State::M, BusEvent::ReadByCache, {abortPush(State::E)});
    t.setSnoop(State::E, BusEvent::ReadByCache,
               {respond(toState(State::S), Tri::Assert)});
    t.setSnoop(State::S, BusEvent::ReadByCache,
               {respond(toState(State::S), Tri::Assert)});
    t.setSnoop(State::I, BusEvent::ReadByCache,
               {respond(toState(State::I))});
    // Column 8: S holders connect and update; M and E are illegal (the
    // broadcasting master holds a copy, contradicting exclusivity).
    t.setSnoop(State::S, BusEvent::BroadcastWriteCache,
               {respond(toState(State::S), Tri::Assert, false, true)});
    t.setSnoop(State::I, BusEvent::BroadcastWriteCache,
               {respond(toState(State::I))});

    // Foreign-event extension (columns 6, 7, 9, 10).
    t.setSnoop(State::M, BusEvent::ReadForModify,
               {respond(toState(State::I), Tri::No, true)});
    t.setSnoop(State::E, BusEvent::ReadForModify,
               {respond(toState(State::I))});
    t.setSnoop(State::S, BusEvent::ReadForModify,
               {respond(toState(State::I))});
    t.setSnoop(State::M, BusEvent::ReadNoCache,
               {respond(toState(State::M), Tri::DontCare, true)});
    t.setSnoop(State::E, BusEvent::ReadNoCache,
               {respond(toState(State::E), Tri::DontCare)});
    t.setSnoop(State::S, BusEvent::ReadNoCache,
               {respond(toState(State::S), Tri::Assert)});
    t.setSnoop(State::M, BusEvent::WriteNoCache,
               {respond(toState(State::M), Tri::DontCare, true)});
    t.setSnoop(State::E, BusEvent::WriteNoCache,
               {respond(toState(State::I))});
    t.setSnoop(State::S, BusEvent::WriteNoCache,
               {respond(toState(State::I))});
    t.setSnoop(State::M, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::M), Tri::DontCare, false, true)});
    t.setSnoop(State::E, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::E), Tri::DontCare, false, true),
                respond(toState(State::I))});
    t.setSnoop(State::S, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::S), Tri::Assert, false, true),
                respond(toState(State::I))});
    for (BusEvent ev :
         {BusEvent::ReadForModify, BusEvent::ReadNoCache,
          BusEvent::WriteNoCache, BusEvent::BroadcastWriteNoCache}) {
        t.setSnoop(State::I, ev, {respond(toState(State::I))});
    }

    return t;
}

} // namespace

const ProtocolTable &
fireflyTable()
{
    static const ProtocolTable table = buildFireflyTable();
    return table;
}

} // namespace fbsim
