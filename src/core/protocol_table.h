/**
 * @file
 * Declarative protocol definition: a pair of transition tables in the
 * exact shape of the paper's Tables 1-7.
 *
 * A ProtocolTable maps
 *   (current state, local event 1-4)  -> alternatives of LocalAction
 *   (current state, bus event 5-10)   -> alternatives of SnoopAction
 *
 * An empty cell is the paper's "--" (not a legal case / error
 * condition).  Protocol engines interpret these tables; the text module
 * renders them back in paper format; the compat module checks class
 * membership cell by cell.
 */

#ifndef FBSIM_CORE_PROTOCOL_TABLE_H_
#define FBSIM_CORE_PROTOCOL_TABLE_H_

#include <array>
#include <string>
#include <vector>

#include "core/actions.h"
#include "core/events.h"
#include "core/state.h"

namespace fbsim {

/** A full protocol definition (one of the paper's tables). */
class ProtocolTable
{
  public:
    ProtocolTable() = default;

    /** @param name display name, e.g. "MOESI" or "Berkeley".
     *  @param states the rows present, in display order. */
    ProtocolTable(std::string name, std::vector<State> states);

    const std::string &name() const { return name_; }

    /** Rows of the table, in display order. */
    const std::vector<State> &states() const { return states_; }

    /** True if the protocol uses the given state at all. */
    bool hasState(State s) const;

    /** Define (replace) a local-event cell. */
    void setLocal(State s, LocalEvent ev, LocalCell cell);

    /** Define (replace) a bus-event cell. */
    void setSnoop(State s, BusEvent ev, SnoopCell cell);

    /** Append one more alternative to a local-event cell. */
    void addLocal(State s, LocalEvent ev, const LocalAction &a);

    /** Append one more alternative to a bus-event cell. */
    void addSnoop(State s, BusEvent ev, const SnoopAction &a);

    /** Cell lookup; an empty cell means "--" (illegal). */
    const LocalCell &local(State s, LocalEvent ev) const;

    /** Cell lookup; an empty cell means "--" (illegal). */
    const SnoopCell &snoop(State s, BusEvent ev) const;

    /**
     * Structural sanity checks: result states must be rows of this
     * table, bus-issuing actions must map to a legal bus-event column,
     * DI is only driven from intervenient states, only owners abort.
     * Returns a list of human-readable problems (empty = OK).
     */
    std::vector<std::string> validate() const;

  private:
    static int stateIndex(State s) { return static_cast<int>(s); }
    static int localIndex(LocalEvent ev) { return static_cast<int>(ev); }
    static int busIndex(BusEvent ev) { return static_cast<int>(ev); }

    std::string name_;
    std::vector<State> states_;
    std::array<std::array<LocalCell, kNumLocalEvents>, kNumStates> local_{};
    std::array<std::array<SnoopCell, kNumBusEvents>, kNumStates> snoop_{};
};

/**
 * The MOESI class definition, Tables 1 and 2 of the paper, including the
 * "*" (write-through) and "**" (non-caching) alternatives and every "or"
 * choice.  First alternative in each cell is the paper's preferred one.
 */
const ProtocolTable &moesiTable();

/** Table 3: the Berkeley (SPUR) protocol, with CH added for class
 *  compatibility as in the paper. */
const ProtocolTable &berkeleyTable();

/** Table 4: the Dragon (Xerox PARC) protocol on Futurebus. */
const ProtocolTable &dragonTable();

/** Table 5: Goodman's Write-Once protocol, adapted with BS abort-push. */
const ProtocolTable &writeOnceTable();

/** Table 6: the Illinois protocol, adapted with BS abort-push. */
const ProtocolTable &illinoisTable();

/** Table 7: the DEC Firefly protocol, adapted with BS abort-push. */
const ProtocolTable &fireflyTable();

} // namespace fbsim

#endif // FBSIM_CORE_PROTOCOL_TABLE_H_
