/**
 * @file
 * Small constructors that make the transition-table transcriptions in
 * core/ read like the paper's cells.  Internal to table definition
 * files; not part of the public API.
 */

#ifndef FBSIM_CORE_TABLE_BUILDERS_H_
#define FBSIM_CORE_TABLE_BUILDERS_H_

#include "core/actions.h"

namespace fbsim {
namespace table_builders {

/** Signal bundle selector for local actions. */
struct Sig
{
    bool ca = false;
    bool im = false;
    bool bc = false;
};

inline constexpr Sig CA{true, false, false};
inline constexpr Sig CA_IM{true, true, false};
inline constexpr Sig CA_IM_BC{true, true, true};
inline constexpr Sig IM{false, true, false};
inline constexpr Sig IM_BC{false, true, true};
inline constexpr Sig NONE{false, false, false};

/** Purely local transition (a hit): "M", "S", "I", ... */
inline LocalAction
stay(State s)
{
    LocalAction a;
    a.next = toState(s);
    a.usesBus = false;
    return a;
}

/** Local transition issuing a bus transaction, e.g. "CH:S/E,CA,R". */
inline LocalAction
issue(StateSpec next, Sig sig, BusCmd cmd,
      ClientKindMask kinds = kindBit(ClientKind::CopyBack))
{
    LocalAction a;
    a.next = next;
    a.ca = sig.ca;
    a.im = sig.im;
    a.bc = sig.bc;
    a.cmd = cmd;
    a.usesBus = true;
    a.kinds = kinds;
    return a;
}

/** The composite "Read>Write" entry. */
inline LocalAction
readThenWrite(ClientKindMask kinds = kindBit(ClientKind::CopyBack))
{
    LocalAction a;
    a.readThenWrite = true;
    a.kinds = kinds;
    return a;
}

/** Snoop response, e.g. "O,CH,DI" or "S,SL,CH". */
inline SnoopAction
respond(StateSpec next, Tri ch = Tri::No, bool di = false, bool sl = false)
{
    SnoopAction a;
    a.next = next;
    a.ch = ch;
    a.di = di;
    a.sl = sl;
    return a;
}

/** The "BS;<state>,CA,W" abort-push-retry response. */
inline SnoopAction
abortPush(State push_state, bool push_ca = true)
{
    SnoopAction a;
    a.bs = true;
    a.pushState = push_state;
    a.pushCa = push_ca;
    return a;
}

inline constexpr ClientKindMask kCB = kindBit(ClientKind::CopyBack);
inline constexpr ClientKindMask kWT = kindBit(ClientKind::WriteThrough);
inline constexpr ClientKindMask kNC = kindBit(ClientKind::NonCaching);

} // namespace table_builders
} // namespace fbsim

#endif // FBSIM_CORE_TABLE_BUILDERS_H_
