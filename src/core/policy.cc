#include "core/policy.h"

#include "common/logging.h"

namespace fbsim {

namespace {

State
weakenState(const MoesiPolicy &policy, State s)
{
    // Note 10: never enter E; Note 12: enter M instead of E.  Note 12
    // is only consulted when E is still in play.
    if (s == State::E) {
        if (!policy.useExclusive)
            return State::S;
        if (policy.exclusiveAsModified)
            return State::M;
    }
    return s;
}

} // namespace

StateSpec
applyStateWeakenings(const MoesiPolicy &policy, StateSpec spec)
{
    StateSpec out{weakenState(policy, spec.ifCh),
                  weakenState(policy, spec.ifNotCh)};
    // Note 9: never silently reclaim M from O; CH:O/M becomes plain O.
    if (!policy.useOwnedReclaim && spec == kChOM)
        out = toState(State::O);
    return out;
}

LocalAction
PreferredChooser::chooseLocal(ClientKind, State, LocalEvent,
                              std::span<const LocalAction> alts)
{
    fbsim_assert(!alts.empty());
    return alts[0];
}

SnoopAction
PreferredChooser::chooseSnoop(ClientKind, State, BusEvent,
                              std::span<const SnoopAction> alts)
{
    fbsim_assert(!alts.empty());
    return alts[0];
}

LocalAction
PolicyChooser::chooseLocal(ClientKind kind, State s, LocalEvent ev,
                           std::span<const LocalAction> alts)
{
    fbsim_assert(!alts.empty());
    const LocalAction *pick = nullptr;

    auto prefer = [&](auto &&pred) {
        if (pick)
            return;
        for (const LocalAction &a : alts) {
            if (pred(a)) {
                pick = &a;
                return;
            }
        }
    };

    if (ev == LocalEvent::Write && isValid(s)) {
        // Writes to shared data: broadcast-update vs invalidate (for a
        // write-through cache: broadcast vs plain write-through).
        if (policy_.sharedWrite == MoesiPolicy::SharedWrite::Broadcast)
            prefer([](const LocalAction &a) { return a.usesBus && a.bc; });
        else
            prefer([](const LocalAction &a) {
                return a.usesBus && !a.bc;
            });
    } else if (ev == LocalEvent::Write) {
        // Write miss.
        if (kind == ClientKind::WriteThrough) {
            if (policy_.wtWriteAllocate) {
                prefer([](const LocalAction &a) {
                    return a.readThenWrite;
                });
            }
            bool want_bc = policy_.sharedWrite ==
                           MoesiPolicy::SharedWrite::Broadcast;
            prefer([&](const LocalAction &a) {
                return a.usesBus && a.cmd == BusCmd::WriteWord &&
                       a.bc == want_bc;
            });
        } else if (policy_.missWrite ==
                   MoesiPolicy::MissWrite::ReadForOwnership) {
            prefer([](const LocalAction &a) {
                return a.usesBus && a.im && a.cmd == BusCmd::Read;
            });
        } else {
            prefer([](const LocalAction &a) { return a.readThenWrite; });
        }
    } else if (ev == LocalEvent::Pass || ev == LocalEvent::Flush) {
        prefer([&](const LocalAction &a) {
            return !a.usesBus || a.bc == policy_.broadcastPush;
        });
    }

    LocalAction chosen = pick ? *pick : alts[0];
    if (!chosen.readThenWrite)
        chosen.next = applyStateWeakenings(policy_, chosen.next);
    return chosen;
}

SnoopAction
PolicyChooser::chooseSnoop(ClientKind, State s, BusEvent ev,
                           std::span<const SnoopAction> alts)
{
    fbsim_assert(!alts.empty());
    const SnoopAction *pick = nullptr;

    if (ev == BusEvent::BroadcastWriteCache ||
        ev == BusEvent::BroadcastWriteNoCache) {
        bool want_update =
            policy_.snoopedBroadcast ==
            MoesiPolicy::SnoopedBroadcast::Update;
        for (const SnoopAction &a : alts) {
            bool updates = a.next.ifCh != State::I || a.sl;
            if (updates == want_update) {
                pick = &a;
                break;
            }
        }
    }

    SnoopAction chosen = pick ? *pick : alts[0];
    if (!chosen.bs)
        chosen.next = applyStateWeakenings(policy_, chosen.next);

    // Note 11: on bus events an unowned holder may always drop to I
    // (and must then not claim retention via CH or SL).  Ownership
    // obligations (DI/BS) cannot be dropped.
    if (policy_.dropOnSnoop && !chosen.bs && !chosen.di && isUnowned(s)) {
        chosen.next = toState(State::I);
        chosen.ch = Tri::No;
        chosen.sl = false;
    }
    return chosen;
}

LocalAction
RandomChooser::chooseLocal(ClientKind, State, LocalEvent,
                           std::span<const LocalAction> alts)
{
    fbsim_assert(!alts.empty());
    return alts[rng_.below(alts.size())];
}

SnoopAction
RandomChooser::chooseSnoop(ClientKind, State, BusEvent,
                           std::span<const SnoopAction> alts)
{
    fbsim_assert(!alts.empty());
    return alts[rng_.below(alts.size())];
}

} // namespace fbsim
