/**
 * @file
 * Transcription of Table 6: the Illinois protocol [Papa84], adapted to
 * the Futurebus.  States M, E, S, I; a read miss loads into E when no
 * other cache holds the line (CH:S/E), otherwise S; writes to S
 * invalidate with an address-only transaction (Illinois S is consistent
 * with memory in the original, so no data need move).
 *
 * Two Futurebus adaptations, as in the paper: (1) memory update during
 * a dirty transfer is replaced with a BS abort / push / retry; (2) the
 * original's "all caches respond, bus priority picks one" is replaced
 * with the unique-respondent rule (intervenient cache or memory).
 */

#include "core/protocol_table.h"
#include "core/table_builders.h"

namespace fbsim {

using namespace table_builders;

namespace {

ProtocolTable
buildIllinoisTable()
{
    ProtocolTable t("Illinois",
                    {State::M, State::E, State::S, State::I});

    // Local events (published: Read, Write).
    t.setLocal(State::M, LocalEvent::Read, {stay(State::M)});
    t.setLocal(State::M, LocalEvent::Write, {stay(State::M)});
    t.setLocal(State::E, LocalEvent::Read, {stay(State::E)});
    t.setLocal(State::E, LocalEvent::Write, {stay(State::M)});
    t.setLocal(State::S, LocalEvent::Read, {stay(State::S)});
    t.setLocal(State::S, LocalEvent::Write,
               {issue(toState(State::M), CA_IM, BusCmd::AddrOnly)});
    t.setLocal(State::I, LocalEvent::Read,
               {issue(kChSE, CA, BusCmd::Read)});
    t.setLocal(State::I, LocalEvent::Write,
               {issue(toState(State::M), CA_IM, BusCmd::Read)});

    // Replacement support.
    t.setLocal(State::M, LocalEvent::Pass,
               {issue(toState(State::E), CA, BusCmd::WriteLine)});
    t.setLocal(State::M, LocalEvent::Flush,
               {issue(toState(State::I), NONE, BusCmd::WriteLine)});
    t.setLocal(State::E, LocalEvent::Flush, {stay(State::I)});
    t.setLocal(State::S, LocalEvent::Flush, {stay(State::I)});

    // Bus events (published: columns 5 and 6).  A dirty line always
    // aborts, pushes and retries so that memory is current before the
    // other master's transaction completes.
    t.setSnoop(State::M, BusEvent::ReadByCache, {abortPush(State::S)});
    t.setSnoop(State::M, BusEvent::ReadForModify, {abortPush(State::S)});
    t.setSnoop(State::E, BusEvent::ReadByCache,
               {respond(toState(State::S), Tri::Assert)});
    t.setSnoop(State::E, BusEvent::ReadForModify,
               {respond(toState(State::I))});
    t.setSnoop(State::S, BusEvent::ReadByCache,
               {respond(toState(State::S), Tri::Assert)});
    t.setSnoop(State::S, BusEvent::ReadForModify,
               {respond(toState(State::I))});
    t.setSnoop(State::I, BusEvent::ReadByCache,
               {respond(toState(State::I))});
    t.setSnoop(State::I, BusEvent::ReadForModify,
               {respond(toState(State::I))});

    // Foreign-event extension (columns 7-10).
    t.setSnoop(State::M, BusEvent::ReadNoCache,
               {respond(toState(State::M), Tri::DontCare, true)});
    t.setSnoop(State::M, BusEvent::WriteNoCache,
               {respond(toState(State::M), Tri::DontCare, true)});
    t.setSnoop(State::M, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::M), Tri::DontCare, false, true)});
    t.setSnoop(State::E, BusEvent::ReadNoCache,
               {respond(toState(State::E), Tri::DontCare)});
    t.setSnoop(State::E, BusEvent::WriteNoCache,
               {respond(toState(State::I))});
    t.setSnoop(State::E, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::E), Tri::DontCare, false, true),
                respond(toState(State::I))});
    t.setSnoop(State::S, BusEvent::ReadNoCache,
               {respond(toState(State::S), Tri::Assert)});
    t.setSnoop(State::S, BusEvent::BroadcastWriteCache,
               {respond(toState(State::S), Tri::Assert, false, true),
                respond(toState(State::I))});
    t.setSnoop(State::S, BusEvent::WriteNoCache,
               {respond(toState(State::I))});
    t.setSnoop(State::S, BusEvent::BroadcastWriteNoCache,
               {respond(toState(State::S), Tri::Assert, false, true),
                respond(toState(State::I))});
    for (BusEvent ev :
         {BusEvent::ReadNoCache, BusEvent::BroadcastWriteCache,
          BusEvent::WriteNoCache, BusEvent::BroadcastWriteNoCache}) {
        t.setSnoop(State::I, ev, {respond(toState(State::I))});
    }

    return t;
}

} // namespace

const ProtocolTable &
illinoisTable()
{
    static const ProtocolTable table = buildIllinoisTable();
    return table;
}

} // namespace fbsim
