/**
 * @file
 * Timed simulation over a multi-bus hierarchy.
 *
 * Unlike sim/Engine (one bus = one server), a hierarchy has several
 * contended resources: each leaf bus and the root bus.  HierEngine
 * schedules one reference at a time (globally, in readiness order) and
 * charges each involved bus its measured occupancy for that access:
 * the buses' stats deltas attribute the work, and an access starts
 * only when every bus it ends up touching is free.  Cluster-local
 * traffic therefore proceeds in parallel across clusters, which is the
 * throughput argument for the section 6 hierarchy.
 *
 * Approximation: bus involvement is known after functional execution,
 * so the start time uses the requester's leaf bus and the root; a
 * remote leaf reached by a down-forward is charged from the same start
 * (its possible extra queueing is folded into the conservative
 * single-reference-in-flight rule).
 */

#ifndef FBSIM_HIER_HIER_ENGINE_H_
#define FBSIM_HIER_HIER_ENGINE_H_

#include <vector>

#include "hier/hier_system.h"
#include "sim/engine.h"
#include "trace/ref_stream.h"

namespace fbsim {

/** Timed results for a hierarchical run. */
struct HierEngineResult
{
    Cycles elapsed = 0;
    std::vector<ProcTiming> procs;
    Cycles rootBusy = 0;
    std::vector<Cycles> leafBusy;   ///< per cluster

    // Resilience ladder summary (all zero in fault-free runs).
    std::uint64_t faultedRefs = 0;      ///< accesses that gave up
    std::uint64_t watchdogTrips = 0;
    std::uint64_t quarantines = 0;      ///< leaf segments pulled
    std::uint64_t reintegrations = 0;   ///< leaf segments rejoined
    std::uint64_t scrubDivergence = 0;  ///< filter entries repaired

    /** Sum of per-processor utilizations. */
    double systemPower() const;

    /** Mean processor utilization. */
    double meanUtilization() const;

    /** Root bus utilization in [0,1]. */
    double
    rootUtilization() const
    {
        return elapsed == 0 ? 0.0
                            : static_cast<double>(rootBusy) /
                                  static_cast<double>(elapsed);
    }
};

/** Drives per-processor reference streams through a HierSystem. */
class HierEngine
{
  public:
    /** EngineConfig::shards is accepted but ignored: hier scheduling
     *  is one global readiness order, so results are byte-identical
     *  at any shard setting (pinned by hier_test). */
    HierEngine(HierSystem &system, const EngineConfig &config);

    /** Run every stream for refs_per_proc references; streams[i]
     *  feeds HierSystem client i. */
    HierEngineResult run(const std::vector<RefStream *> &streams,
                         std::uint64_t refs_per_proc);

  private:
    HierSystem &system_;
    EngineConfig config_;
};

} // namespace fbsim

#endif // FBSIM_HIER_HIER_ENGINE_H_
