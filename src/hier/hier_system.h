/**
 * @file
 * Two-level multi-bus system (the paper's section 6 future work): a
 * root Futurebus hosting main memory, and any number of leaf buses
 * ("clusters") of caches, coupled by BusBridges.
 *
 * Consistency is maintained hierarchically: the MOESI invariants hold
 * globally (the same CoherenceChecker audits all clusters against the
 * single root memory), while the bridges' conservative filters keep
 * cluster-private coherence traffic off the root bus.
 *
 * Restrictions: leaf caches must run MOESI-class protocols (no BS
 * abort protocols - an abort cannot propagate across a bridge), and
 * Sync commands do not cross bridges.
 */

#ifndef FBSIM_HIER_HIER_SYSTEM_H_
#define FBSIM_HIER_HIER_SYSTEM_H_

#include <memory>
#include <vector>

#include "checker/coherence_checker.h"
#include "hier/bridge.h"
#include "sim/system.h"

namespace fbsim {

/** Configuration of a hierarchical system. */
struct HierConfig
{
    std::size_t lineBytes = 32;
    BusCostModel rootCost;   ///< root bus timing
    BusCostModel leafCost;   ///< leaf bus timing
    unsigned maxBusRetries = 16;
    /** Run the full invariant check after every access (tests). */
    bool checkEveryAccess = false;
    /** Snoop-filter fast path on root and leaf buses (see SystemConfig). */
    bool snoopFilter = true;
    /** Debug: assert the filter never suppresses a holder. */
    bool snoopFilterCrossCheck = false;
    /** checkEveryAccess re-verifies only dirtied lines (see SystemConfig). */
    bool incrementalCheck = true;
};

/** A root bus plus clusters of caches behind bridges. */
class HierSystem
{
  public:
    /** @param clusters number of leaf buses (>= 1). */
    HierSystem(const HierConfig &config, std::size_t clusters);
    ~HierSystem();

    HierSystem(const HierSystem &) = delete;
    HierSystem &operator=(const HierSystem &) = delete;

    std::size_t numClusters() const { return clusters_.size(); }

    /**
     * Add a cache to a cluster; returns a system-wide client id.
     * The protocol must be a MOESI-class member (MOESI, Berkeley,
     * Dragon; write-through via spec.writeThrough).
     */
    MasterId addCache(std::size_t cluster, const CacheSpec &spec);

    /** Add a non-caching master to a cluster. */
    MasterId addNonCachingMaster(std::size_t cluster,
                                 bool broadcast_writes);

    /** Processor access API (mirrors System). */
    AccessOutcome read(MasterId id, Addr addr);
    AccessOutcome write(MasterId id, Addr addr, Word value);
    AccessOutcome flush(MasterId id, Addr addr, bool keep_copy);

    /** Run the global invariant check. */
    std::vector<std::string> checkNow() const;

    /** Oracle violations recorded so far. */
    const std::vector<std::string> &violations() const
    { return violations_; }

    std::size_t numClients() const { return clients_.size(); }
    SnoopingCache *cacheOf(MasterId id);

    /** Cluster a client was added to. */
    std::size_t clusterOf(MasterId id) const;

    /** Exact test: would the client's next access use a bus? */
    bool wouldUseBus(MasterId id, bool is_write, Addr addr) const;
    Bus &rootBus() { return *rootBus_; }
    Bus &leafBus(std::size_t cluster);
    BusBridge &bridge(std::size_t cluster);
    MainMemory &memory() { return *memory_; }
    CoherenceChecker &checker() { return *checker_; }

  private:
    struct Cluster
    {
        std::unique_ptr<BusBridge> bridge;
        std::unique_ptr<Bus> bus;
        MasterId nextLeafId = 0;
    };

    struct ClientRef
    {
        std::size_t cluster;
        std::unique_ptr<BusClient> client;
        SnoopingCache *cache;   ///< null for non-caching masters
    };

    void afterAccess();

    HierConfig config_;
    std::unique_ptr<MainMemory> memory_;
    std::unique_ptr<MainMemorySlave> rootSlave_;
    std::unique_ptr<Bus> rootBus_;
    std::vector<Cluster> clusters_;
    std::vector<ClientRef> clients_;
    std::unique_ptr<CoherenceChecker> checker_;
    std::vector<std::string> violations_;
};

} // namespace fbsim

#endif // FBSIM_HIER_HIER_SYSTEM_H_
