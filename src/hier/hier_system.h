/**
 * @file
 * Two-level multi-bus system (the paper's section 6 future work): a
 * root Futurebus hosting main memory, and any number of leaf buses
 * ("clusters") of caches, coupled by BusBridges.
 *
 * Consistency is maintained hierarchically: the MOESI invariants hold
 * globally (the same CoherenceChecker audits all clusters against the
 * single root memory), while the bridges' conservative filters keep
 * cluster-private coherence traffic off the root bus.
 *
 * Restrictions: leaf caches must run MOESI-class protocols (no BS
 * abort protocols - an abort cannot propagate across a bridge), and
 * Sync commands do not cross bridges.
 */

#ifndef FBSIM_HIER_HIER_SYSTEM_H_
#define FBSIM_HIER_HIER_SYSTEM_H_

#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "checker/coherence_checker.h"
#include "hier/bridge.h"
#include "sim/system.h"

namespace fbsim {

/** Configuration of a hierarchical system. */
struct HierConfig
{
    std::size_t lineBytes = 32;
    BusCostModel rootCost;   ///< root bus timing
    BusCostModel leafCost;   ///< leaf bus timing
    unsigned maxBusRetries = 16;
    /** Run the full invariant check after every access (tests). */
    bool checkEveryAccess = false;
    /** Snoop-filter fast path on root and leaf buses (see SystemConfig). */
    bool snoopFilter = true;
    /** Debug: assert the filter never suppresses a holder. */
    bool snoopFilterCrossCheck = false;
    /** checkEveryAccess re-verifies only dirtied lines (see SystemConfig). */
    bool incrementalCheck = true;

    /**
     * Fault campaign (nullopt = fault-free).  One injector serves the
     * whole fabric: root bus, root memory slave, every leaf bus, and
     * the bridges' own fault sites ("bridge<k>.drop" etc., keyed by
     * cluster index so assembly order never shifts a schedule).
     */
    std::optional<FaultConfig> faults;
    /** Consecutive faulted accesses by one master before its cluster's
     *  watchdog trips (see SystemConfig::watchdogRounds). */
    unsigned watchdogRounds = 8;
    bool quarantineOnWatchdog = true;
    /** Watchdog trips charged to a cluster (by its masters or its
     *  bridge's forward watchdog) before the whole leaf segment is
     *  quarantined - the hierarchy's board is the board-bus. */
    unsigned quarantineAfterTrips = 1;
    /** Schedule a quarantined segment's reintegration this many
     *  root-bus busy cycles after it was pulled; 0 = permanent. */
    Cycles reintegrateAfterCycles = 0;
    /** Bridge cross-bus forward retry policy (see
     *  BusBridge::setForwardRetryPolicy). */
    unsigned bridgeForwardRetries = 4;
    Cycles bridgeBackoffBase = 2;
    /** Consecutive exhausted forwards before a bridge's livelock
     *  watchdog trips (charged to its cluster's ladder). */
    unsigned bridgeWatchdogThreshold = 4;
    /**
     * Audit-and-scrub cadence: every N accesses, recompute the exact
     * per-cluster presence sets from the leaf TagStores and repair
     * every bridge filter to them, counting the divergence.  0 =
     * never (scrubFilters() can still be called by hand).
     */
    std::uint64_t scrubEveryAccesses = 0;
};

/** A root bus plus clusters of caches behind bridges. */
class HierSystem
{
  public:
    /** @param clusters number of leaf buses (>= 1). */
    HierSystem(const HierConfig &config, std::size_t clusters);
    ~HierSystem();

    HierSystem(const HierSystem &) = delete;
    HierSystem &operator=(const HierSystem &) = delete;

    std::size_t numClusters() const { return clusters_.size(); }

    /**
     * Add a cache to a cluster; returns a system-wide client id.
     * The protocol must be a MOESI-class member (MOESI, Berkeley,
     * Dragon; write-through via spec.writeThrough).
     */
    MasterId addCache(std::size_t cluster, const CacheSpec &spec);

    /** Add a non-caching master to a cluster. */
    MasterId addNonCachingMaster(std::size_t cluster,
                                 bool broadcast_writes);

    /** Processor access API (mirrors System). */
    AccessOutcome read(MasterId id, Addr addr);
    AccessOutcome write(MasterId id, Addr addr, Word value);
    AccessOutcome flush(MasterId id, Addr addr, bool keep_copy);

    /** Run the global invariant check. */
    std::vector<std::string> checkNow() const;

    /** Oracle violations recorded so far. */
    const std::vector<std::string> &violations() const
    { return violations_; }

    std::size_t numClients() const { return clients_.size(); }
    SnoopingCache *cacheOf(MasterId id);

    /** Cluster a client was added to. */
    std::size_t clusterOf(MasterId id) const;

    /** Exact test: would the client's next access use a bus? */
    bool wouldUseBus(MasterId id, bool is_write, Addr addr) const;
    Bus &rootBus() { return *rootBus_; }
    Bus &leafBus(std::size_t cluster);
    BusBridge &bridge(std::size_t cluster);
    MainMemory &memory() { return *memory_; }
    CoherenceChecker &checker() { return *checker_; }

    /** Observe fault/recovery instants on every bus (Perfetto etc.). */
    void attachTrace(TraceSink *sink);

    /**
     * Pull one leaf segment (P896 live removal of a board-bus): every
     * cache in the cluster is flushed and isolated, the bridge is
     * suspended from the root bus, and the cluster's filter checks are
     * detached.  The flushes run under the injector's quiesced window
     * and the bridge's maintenance bypass, so owned data provably
     * drains to memory.  Returns false when already quarantined (or no
     * fault machinery is armed).
     */
    bool quarantineCluster(std::size_t cluster);

    /**
     * Rejoin a quarantined segment: caches rejoin cold (all lines
     * invalid), the bridge's filters are scrubbed to the *exact*
     * recomputed presence sets before it resumes snooping, and the
     * cluster's H1/H2 checks re-attach.  Returns false when not
     * quarantined.
     */
    bool reintegrateCluster(std::size_t cluster);

    bool clusterQuarantined(std::size_t cluster) const
    { return clusterQuarantined_[cluster]; }

    /**
     * Audit-and-scrub every active bridge's filters against the exact
     * presence sets recomputed from the leaf TagStores; repairs are
     * applied and the total divergence (stale + missing entries) is
     * returned and accumulated into scrubDivergence().
     */
    std::uint64_t scrubFilters();

    /** Fault/recovery ladder counters and log (mirror System's). */
    const std::vector<std::string> &faultEvents() const
    { return faultEvents_; }
    std::uint64_t watchdogTrips() const { return watchdogTrips_; }
    std::uint64_t quarantineCount() const { return quarantines_; }
    std::uint64_t reintegrationCount() const { return reintegrations_; }
    std::uint64_t scrubDivergence() const { return scrubDivergence_; }
    const FaultInjector *faults() const { return faults_.get(); }

  private:
    struct Cluster
    {
        std::unique_ptr<BusBridge> bridge;
        std::unique_ptr<Bus> bus;
        MasterId nextLeafId = 0;
    };

    struct ClientRef
    {
        std::size_t cluster;
        std::unique_ptr<BusClient> client;
        SnoopingCache *cache;   ///< null for non-caching masters
    };

    void afterAccess();

    /** Watchdog/ladder bookkeeping after every access. */
    void postAccess(MasterId id, const AccessOutcome &outcome);

    /** Apply a due dataFlip fault to a random live cache. */
    void maybeFlipData();

    /** Charge one watchdog trip to a cluster's escalation ladder. */
    void tripCluster(std::size_t cluster, const std::string &why);

    /** Fire scheduled segment rejoins whose due cycle passed. */
    void serviceRejoins();

    /** Re-attach cluster `k`'s H1/H2 probes to its bridge. */
    void attachFilterChecks(std::size_t k);

    /** Exact per-cluster presence sets from the leaf TagStores. */
    void computePresence(
        std::vector<std::unordered_set<LineAddr>> &held) const;

    void recordFaultEvent(std::string event);

    HierConfig config_;
    std::unique_ptr<MainMemory> memory_;
    std::unique_ptr<MainMemorySlave> rootSlave_;
    std::unique_ptr<Bus> rootBus_;
    std::vector<Cluster> clusters_;
    std::vector<ClientRef> clients_;
    std::unique_ptr<CoherenceChecker> checker_;
    std::vector<std::string> violations_;

    // Fault/recovery machinery (all idle when faults_ is null).
    std::unique_ptr<FaultInjector> faults_;
    TraceSink *trace_ = nullptr;
    std::vector<unsigned> noProgress_;       ///< per master
    std::vector<unsigned> clusterTrips_;     ///< per cluster, since join
    std::vector<std::uint64_t> bridgeTripsSeen_; ///< polled bridge trips
    std::vector<bool> clusterQuarantined_;
    std::vector<Cycles> rejoinDue_;          ///< root busy-cycle clock
    std::size_t scheduledRejoins_ = 0;
    std::vector<std::string> faultEvents_;
    std::uint64_t watchdogTrips_ = 0;
    std::uint64_t quarantines_ = 0;
    std::uint64_t reintegrations_ = 0;
    std::uint64_t scrubDivergence_ = 0;
    std::uint64_t accessCount_ = 0;
};

} // namespace fbsim

#endif // FBSIM_HIER_HIER_SYSTEM_H_
