#include "hier/hier_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace fbsim {

double
HierEngineResult::systemPower() const
{
    double sum = 0.0;
    for (const ProcTiming &p : procs)
        sum += p.utilization();
    return sum;
}

double
HierEngineResult::meanUtilization() const
{
    return procs.empty() ? 0.0 : systemPower() / procs.size();
}

HierEngine::HierEngine(HierSystem &system, const EngineConfig &config)
    : system_(system), config_(config)
{
}

HierEngineResult
HierEngine::run(const std::vector<RefStream *> &streams,
                std::uint64_t refs_per_proc)
{
    std::size_t n = streams.size();
    fbsim_assert(n == system_.numClients());
    fbsim_assert(n > 0);
    std::size_t clusters = system_.numClusters();

    struct ProcState
    {
        Cycles readyAt = 0;
        std::uint64_t done = 0;
        bool hasRef = false;
        ProcRef ref;
    };
    std::vector<ProcState> procs(n);
    HierEngineResult result;
    result.procs.resize(n);
    result.leafBusy.assign(clusters, 0);

    std::vector<Cycles> leaf_free(clusters, 0);
    Cycles root_free = 0;

    auto fetch = [&](std::size_t i) {
        if (!procs[i].hasRef && procs[i].done < refs_per_proc) {
            procs[i].ref = streams[i]->next();
            procs[i].hasRef = true;
        }
    };
    for (std::size_t i = 0; i < n; ++i)
        fetch(i);

    std::vector<std::uint64_t> seq(n, 0);
    auto leaf_busy = [&](std::size_t c) {
        return system_.leafBus(c).stats().busyCycles;
    };

    for (;;) {
        std::size_t imin = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (procs[i].hasRef &&
                (imin == n || procs[i].readyAt < procs[imin].readyAt)) {
                imin = i;
            }
        }
        if (imin == n)
            break;

        ProcState &p = procs[imin];
        std::size_t home = system_.clusterOf(imin);
        ProcTiming &timing = result.procs[imin];
        bool needs_bus = system_.wouldUseBus(
            static_cast<MasterId>(imin), p.ref.write, p.ref.addr);

        Cycles start = p.readyAt;
        if (needs_bus) {
            // Wait for the home leaf bus and, pessimistically, the
            // root (cross-cluster involvement is unknown pre-access;
            // waiting only on the home leaf would let two clusters
            // overlap on the root).
            start = std::max(start, leaf_free[home]);
        }

        // Snapshot bus occupancies, execute, attribute the deltas.
        std::vector<Cycles> before(clusters);
        for (std::size_t c = 0; c < clusters; ++c)
            before[c] = leaf_busy(c);
        Cycles root_before = system_.rootBus().stats().busyCycles;

        if (p.ref.write) {
            Word value =
                (static_cast<Word>(imin + 1) << 48) ^ (++seq[imin]);
            AccessOutcome o = system_.write(
                static_cast<MasterId>(imin), p.ref.addr, value);
            if (o.faulted)
                ++result.faultedRefs;
        } else {
            AccessOutcome o =
                system_.read(static_cast<MasterId>(imin), p.ref.addr);
            if (o.faulted)
                ++result.faultedRefs;
        }

        Cycles root_delta =
            system_.rootBus().stats().busyCycles - root_before;
        if (root_delta > 0)
            start = std::max(start, root_free);
        Cycles my_leaf_delta = 0;
        for (std::size_t c = 0; c < clusters; ++c) {
            Cycles delta = leaf_busy(c) - before[c];
            if (delta == 0)
                continue;
            leaf_free[c] = std::max(leaf_free[c], start + delta);
            result.leafBusy[c] += delta;
            if (c == home)
                my_leaf_delta = delta;
        }
        if (root_delta > 0) {
            root_free = start + root_delta;
            result.rootBusy += root_delta;
        }

        timing.refs += 1;
        timing.execCycles += config_.hitCycles;
        if (my_leaf_delta > 0 || root_delta > 0) {
            timing.busWaitCycles += start - p.readyAt;
            timing.busServiceCycles += my_leaf_delta;
            p.readyAt = start + std::max(my_leaf_delta, root_delta) +
                        config_.hitCycles;
        } else {
            p.readyAt += config_.hitCycles;
        }
        timing.finishTime = p.readyAt;
        p.hasRef = false;
        p.done += 1;
        fetch(imin);
    }

    for (const ProcTiming &p : result.procs)
        result.elapsed = std::max(result.elapsed, p.finishTime);
    result.watchdogTrips = system_.watchdogTrips();
    result.quarantines = system_.quarantineCount();
    result.reintegrations = system_.reintegrationCount();
    result.scrubDivergence = system_.scrubDivergence();
    return result;
}

} // namespace fbsim
