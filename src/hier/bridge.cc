#include "hier/bridge.h"

#include <algorithm>

#include "common/logging.h"

namespace fbsim {

BusBridge::BusBridge(MasterId root_id, MasterId leaf_id, Bus &root,
                     std::size_t words_per_line)
    : rootId_(root_id), leafId_(leaf_id), root_(root),
      wordsPerLine_(words_per_line)
{
    fbsim_assert(words_per_line == root.wordsPerLine());
}

void
BusBridge::setLeafBus(Bus *leaf)
{
    fbsim_assert(leaf_ == nullptr && leaf != nullptr);
    fbsim_assert(leaf->wordsPerLine() == wordsPerLine_);
    leaf_ = leaf;
}

void
BusBridge::setFaultInjector(FaultInjector *faults, std::size_t cluster)
{
    faults_ = faults;
    cluster_ = cluster;
    if (!faults_) {
        dropSite_ = delaySite_ = dupSite_ = staleSite_ = stallSite_ =
            nullptr;
        return;
    }
    // Site names are keyed by the cluster index, a stable property of
    // the topology - never by attach order - so each bridge's streams
    // are a pure function of (seed, cluster).
    const std::string base = strprintf("bridge%zu.", cluster);
    dropSite_ = &faults_->site(base + "drop");
    delaySite_ = &faults_->site(base + "delay");
    dupSite_ = &faults_->site(base + "dup");
    staleSite_ = &faults_->site(base + "stale");
    stallSite_ = &faults_->site(base + "stall");
}

bool
BusBridge::forwardLost()
{
    if (!faults_ || maintenance_)
        return false;
    if (stallRemaining_ == 0 && faults_->fireLeafStall(*stallSite_)) {
        stallRemaining_ = faults_->config().leafStallForwards;
        ++stats_.stallWindows;
        fbsim_warn("bridge %zu: leaf segment partitioned, next %u "
                   "forwards lost %s",
                   cluster_, stallRemaining_,
                   faults_->describe().c_str());
    }
    if (stallRemaining_ > 0) {
        --stallRemaining_;
        ++stats_.stallDrops;
        return true;
    }
    return faults_->fireBridgeDrop(*dropSite_);
}

void
BusBridge::eraseRemoteShared(LineAddr la)
{
    // The filterStale site only ever *suppresses* erases: the filter
    // decays in the conservative direction (stale presence costs
    // forwards), never the unsafe one (a missing bit would skip a
    // required invalidation).  Draw only when the erase would land.
    if (faults_ && !maintenance_ && remoteShared_.count(la) != 0 &&
        faults_->fireFilterStale(*staleSite_)) {
        ++stats_.staleFilterSkips;
        return;
    }
    remoteShared_.erase(la);
}

void
BusBridge::eraseLocalHeld(LineAddr la)
{
    if (faults_ && !maintenance_ && localHeld_.count(la) != 0 &&
        faults_->fireFilterStale(*staleSite_)) {
        ++stats_.staleFilterSkips;
        return;
    }
    localHeld_.erase(la);
}

FilterAudit
BusBridge::auditFilters(const std::unordered_set<LineAddr> &local,
                        const std::unordered_set<LineAddr> &remote,
                        bool repair)
{
    FilterAudit a;
    for (LineAddr la : localHeld_) {
        if (local.count(la) == 0)
            ++a.staleLocal;
    }
    for (LineAddr la : local) {
        if (localHeld_.count(la) == 0)
            ++a.missingLocal;
    }
    for (LineAddr la : remoteShared_) {
        if (remote.count(la) == 0)
            ++a.staleRemote;
    }
    for (LineAddr la : remote) {
        if (remoteShared_.count(la) == 0)
            ++a.missingRemote;
    }
    if (repair && a.total() != 0) {
        localHeld_ = local;
        remoteShared_ = remote;
        stats_.scrubbedEntries += a.total();
    }
    return a;
}

SlaveResult
BusBridge::forwardUp(const BusRequest &req, BusCmd cmd,
                     MasterSignals sig, bool local_ch,
                     std::span<Word> read_out,
                     std::span<const Word> wline)
{
    BusRequest up;
    up.master = rootId_;
    up.cmd = cmd;
    up.sig = sig;
    up.line = req.line;
    up.wordIdx = req.wordIdx;
    up.wdata = req.wdata;
    up.wline = wline;
    // Carry the requesting bus's CH upward so snooper-side CH
    // conditionals in other clusters resolve against it.
    up.chHint = req.chHint || local_ch;

    ++stats_.upForwards;
    Cycles extra = 0;

    // Give up on this forward: report it dropped so the leaf bus's
    // own abort-retry machinery re-drives the whole transaction, and
    // feed the per-bridge livelock watchdog.
    auto exhausted = [&]() {
        ++stats_.forwardExhausted;
        if (watchdogThreshold_ != 0 &&
            ++exhaustStreak_ >= watchdogThreshold_) {
            ++stats_.watchdogTrips;
            exhaustStreak_ = 0;
            fbsim_warn("bridge %zu: forward watchdog tripped after %u "
                       "consecutive exhausted forwards %s",
                       cluster_, watchdogThreshold_,
                       faults_ ? faults_->describe().c_str() : "");
        }
        SlaveResult out;
        out.dropped = true;
        out.extraDelay = extra;
        return out;
    };

    for (unsigned attempt = 0;; ++attempt) {
        if (forwardLost()) {
            if (attempt >= maxForwardRetries_)
                return exhausted();
            // Exponential backoff before the re-send; the cycles are
            // charged to the leaf transaction via extraDelay.
            ++stats_.forwardRetries;
            const Cycles b = backoffBase_
                             << std::min(attempt, 6u);
            stats_.forwardBackoffCycles += b;
            extra += b;
            continue;
        }
        BusResult r = root_.execute(up);
        if (!r.converged) {
            // The root bus itself gave up under faults; same contract
            // as a lost forward, minus further in-place retries (the
            // root already burned its own budget).
            if (!r.line.empty())
                root_.recycleLineBuffer(std::move(r.line));
            extra += r.cost;
            return exhausted();
        }
        exhaustStreak_ = 0;
        if (cmd == BusCmd::Read && !read_out.empty()) {
            fbsim_assert(r.line.size() == read_out.size());
            std::copy(r.line.begin(), r.line.end(), read_out.begin());
        }
        if (!r.line.empty())
            root_.recycleLineBuffer(std::move(r.line));
        if (faults_ && !maintenance_) {
            // Duplicate delivery, only for non-fill forwards: every
            // such command is value-idempotent at the root (the same
            // invalidation, write-through or copyback lands twice).
            // A duplicated fill Read would instead re-read memory the
            // remote owner never updated - stale data, not a timing
            // fault - so fills are exempt by construction.
            if (cmd != BusCmd::Read &&
                faults_->fireBridgeDup(*dupSite_)) {
                ++stats_.dupForwards;
                BusResult r2 = root_.execute(up);
                if (!r2.line.empty())
                    root_.recycleLineBuffer(std::move(r2.line));
                r.cost += r2.cost;
            }
            if (const Cycles d =
                    faults_->fireBridgeDelay(*delaySite_)) {
                ++stats_.delayedForwards;
                extra += d;
            }
        }
        SlaveResult out;
        out.resp = r.resp;
        out.cost = r.cost;
        out.extraDelay = extra;
        return out;
    }
}

SlaveResult
BusBridge::transact(const BusRequest &req, bool local_owner,
                    bool local_ch,
                    std::span<Word> read_out)
{
    fbsim_assert(leaf_ != nullptr);
    if (req.cmd == BusCmd::Sync)
        fbsim_fatal("Sync commands do not propagate across bus bridges");

    // The canonical invalidation used when a locally-absorbed write
    // must still kill remote copies.
    const MasterSignals kInvalidate{true, true, false};

    switch (req.cmd) {
      case BusCmd::Read:
        if (!local_owner) {
            // Fill: the data authority is above this bus.
            SlaveResult res =
                forwardUp(req, BusCmd::Read, req.sig, local_ch, read_out, {});
            // A dropped forward never ran at the root: the fill did
            // not happen and - critically - remote copies were NOT
            // invalidated, so neither filter may change.  (Recording
            // the erase anyway would be the unsafe direction.)
            if (!res.dropped) {
                if (req.sig.ca)
                    localHeld_.insert(req.line);
                if (req.sig.im)
                    eraseRemoteShared(req.line);
            }
            return res;
        }
        // Served by a cluster owner.  Remote copies only matter if
        // they may exist: a read-for-ownership must invalidate them; a
        // plain read must gather their CH (for the owner's CH:O/M).
        if (!mayBeRemote(req.line)) {
            ++stats_.upFiltered;
            return {};
        }
        if (req.sig.im) {
            SlaveResult res =
                forwardUp(req, BusCmd::AddrOnly, kInvalidate, local_ch, {}, {});
            if (!res.dropped)
                eraseRemoteShared(req.line);
            return res;
        }
        return forwardUp(req, BusCmd::Read, req.sig, local_ch, {}, {});

      case BusCmd::WriteWord:
        if (req.sig.bc) {
            if (req.sig.ca) {
                // A broadcasting cache master ends the transaction as
                // the line's owner (CH:O/M), so root memory need not
                // see the write when no remote copy may exist - the
                // ownership invariant covers the stale memory.
                if (!mayBeRemote(req.line)) {
                    localHeld_.insert(req.line);
                    ++stats_.upFiltered;
                    return {};
                }
            }
            // Otherwise (remote copies possible, or a non-owning
            // col-10 broadcast) the write must reach the root.
            {
                SlaveResult res = forwardUp(req, BusCmd::WriteWord,
                                            req.sig, local_ch, {}, {});
                if (req.sig.ca && !res.dropped)
                    localHeld_.insert(req.line);
                return res;
            }
        }
        if (local_owner) {
            // Captured by the cluster owner; invalidate remote copies.
            if (!mayBeRemote(req.line)) {
                ++stats_.upFiltered;
                return {};
            }
            SlaveResult res =
                forwardUp(req, BusCmd::AddrOnly, kInvalidate, local_ch, {}, {});
            if (!res.dropped)
                eraseRemoteShared(req.line);
            return res;
        }
        // Write-through to memory (a remote owner may capture via DI).
        return forwardUp(req, BusCmd::WriteWord, req.sig, local_ch, {}, {});

      case BusCmd::WriteLine:
        // Pushes always update root memory; remote holders respond CH
        // (resolving a Pass's CH:S/E).
        return forwardUp(req, BusCmd::WriteLine, req.sig, local_ch, {},
                         req.wline);

      case BusCmd::AddrOnly:
        if (!mayBeRemote(req.line)) {
            ++stats_.upFiltered;
            return {};
        }
        {
            SlaveResult res =
                forwardUp(req, BusCmd::AddrOnly, req.sig, local_ch, {},
                          {});
            if (!res.dropped)
                eraseRemoteShared(req.line);
            return res;
        }

      case BusCmd::Sync:
        break;
    }
    fbsim_panic("unreachable");
}

SnoopReply
BusBridge::snoop(const BusRequest &req)
{
    fbsim_assert(leaf_ != nullptr);
    pendingValid_ = false;
    SnoopReply reply;
    if (req.cmd == BusCmd::Sync)
        fbsim_fatal("Sync commands do not propagate across bus bridges");

    // Track what the rest of the system caches: any transaction whose
    // master asserts CA leaves a retained copy somewhere remote.
    bool will_retain_remote = req.sig.ca;

    if (salvagedValid_ && req.line == salvagedAddr_) {
        // A prior invalidating down-forward emptied this cluster of
        // the line, then the root attempt aborted after the leaf had
        // committed (spurious-abort injection): the bridge holds the
        // only copy.  Serve from the salvage buffer instead of
        // re-forwarding into the now-empty cluster.
        if (req.cmd == BusCmd::Read) {
            pendingLine_ = salvagedLine_;
            pendingValid_ = true;
            reply.resp.di = true;
            ++stats_.salvageServes;
        } else if (req.cmd == BusCmd::WriteWord) {
            // Snarf the word so the buffer stays the newest copy
            // (root memory's other words are still stale).
            salvagedLine_[req.wordIdx] = req.wdata;
        } else if (req.cmd == BusCmd::WriteLine) {
            // A full-line push makes root memory current again.
            salvagedValid_ = false;
        }
        if (will_retain_remote)
            remoteShared_.insert(req.line);
        return reply;
    }

    if (!mayBeLocal(req.line)) {
        ++stats_.downFiltered;
        if (will_retain_remote)
            remoteShared_.insert(req.line);
        return reply;
    }

    BusRequest down = req;
    down.master = leafId_;
    down.fromBridge = true;
    if (conservativeCh_)
        down.chHint = true;
    ++stats_.downForwards;
    BusResult r = leaf_->execute(down);
    if (!r.converged) {
        // The cluster was NOT serviced (every leaf attempt aborted
        // before commit, so no state changed below).  Completing the
        // root transaction anyway would let an invalidation count as
        // delivered while stale copies survive down here - so assert
        // BS: the root bus abort-retries the whole transaction, which
        // re-drives every cluster (idempotent for MOESI-class leaves).
        // Only reachable under fault injection; fault-free leaf
        // executes always converge.
        if (!r.line.empty())
            leaf_->recycleLineBuffer(std::move(r.line));
        ++stats_.downAborts;
        reply.resp.bs = true;
        return reply;
    }

    if (req.cmd == BusCmd::Read && r.resp.di) {
        pendingLine_.swap(r.line);
        pendingValid_ = true;
        ++stats_.remoteInterventions;
        if (req.sig.im) {
            // The down-forward invalidated the owner that supplied
            // this data; if the root attempt aborts from here on, the
            // buffer below is the only copy anywhere.  Latch it until
            // a root Read on the line commits.
            salvagedLine_ = pendingLine_;
            salvagedAddr_ = req.line;
            salvagedValid_ = true;
            ++stats_.salvagedLines;
        }
    }
    if (!r.line.empty())
        leaf_->recycleLineBuffer(std::move(r.line));

    // Did the down-forward clear the cluster?  A read-for-modify or
    // invalidate kills every copy; a plain (col 9) write leaves a
    // capturing owner alive.
    if (req.sig.im && !req.sig.bc && !r.resp.di)
        eraseLocalHeld(req.line);
    if (req.cmd == BusCmd::AddrOnly ||
        (req.cmd == BusCmd::Read && req.sig.im)) {
        eraseLocalHeld(req.line);
    }

    if (will_retain_remote)
        remoteShared_.insert(req.line);

    reply.resp.ch = r.resp.ch;
    reply.resp.di = r.resp.di;
    reply.resp.sl = r.resp.sl;
    fbsim_assert(!r.resp.bs);
    return reply;
}

void
BusBridge::supplyLine(const BusRequest &req, std::span<Word> out)
{
    fbsim_assert(pendingValid_);
    fbsim_assert(out.size() == pendingLine_.size());
    (void)req;
    std::copy(pendingLine_.begin(), pendingLine_.end(), out.begin());
}

void
BusBridge::commit(const BusRequest &req, bool)
{
    // The cluster already committed during the down-forward.
    if (salvagedValid_ && req.line == salvagedAddr_ &&
        req.cmd == BusCmd::Read) {
        // The line reached a new owner of record (the requester, via
        // our DI supply on the non-aborted attempt).
        salvagedValid_ = false;
    }
    pendingValid_ = false;
}

void
BusBridge::performAbortPush(const BusRequest &)
{
    // A bridge's BS is a pure busy-abort (a down-forward failed under
    // faults); there is no dirty line to push.  The root master simply
    // retries.
}

} // namespace fbsim
