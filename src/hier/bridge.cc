#include "hier/bridge.h"

#include "common/logging.h"

namespace fbsim {

BusBridge::BusBridge(MasterId root_id, MasterId leaf_id, Bus &root,
                     std::size_t words_per_line)
    : rootId_(root_id), leafId_(leaf_id), root_(root),
      wordsPerLine_(words_per_line)
{
    fbsim_assert(words_per_line == root.wordsPerLine());
}

void
BusBridge::setLeafBus(Bus *leaf)
{
    fbsim_assert(leaf_ == nullptr && leaf != nullptr);
    fbsim_assert(leaf->wordsPerLine() == wordsPerLine_);
    leaf_ = leaf;
}

SlaveResult
BusBridge::forwardUp(const BusRequest &req, BusCmd cmd,
                     MasterSignals sig, bool local_ch,
                     std::span<Word> read_out,
                     std::span<const Word> wline)
{
    BusRequest up;
    up.master = rootId_;
    up.cmd = cmd;
    up.sig = sig;
    up.line = req.line;
    up.wordIdx = req.wordIdx;
    up.wdata = req.wdata;
    up.wline = wline;
    // Carry the requesting bus's CH upward so snooper-side CH
    // conditionals in other clusters resolve against it.
    up.chHint = req.chHint || local_ch;

    ++stats_.upForwards;
    BusResult r = root_.execute(up);
    if (cmd == BusCmd::Read && !read_out.empty()) {
        fbsim_assert(r.line.size() == read_out.size());
        std::copy(r.line.begin(), r.line.end(), read_out.begin());
    }
    if (!r.line.empty())
        root_.recycleLineBuffer(std::move(r.line));
    SlaveResult out;
    out.resp = r.resp;
    out.cost = r.cost;
    return out;
}

SlaveResult
BusBridge::transact(const BusRequest &req, bool local_owner,
                    bool local_ch,
                    std::span<Word> read_out)
{
    fbsim_assert(leaf_ != nullptr);
    if (req.cmd == BusCmd::Sync)
        fbsim_fatal("Sync commands do not propagate across bus bridges");

    // The canonical invalidation used when a locally-absorbed write
    // must still kill remote copies.
    const MasterSignals kInvalidate{true, true, false};

    switch (req.cmd) {
      case BusCmd::Read:
        if (!local_owner) {
            // Fill: the data authority is above this bus.
            SlaveResult res =
                forwardUp(req, BusCmd::Read, req.sig, local_ch, read_out, {});
            if (req.sig.ca)
                localHeld_.insert(req.line);
            if (req.sig.im)
                remoteShared_.erase(req.line);
            return res;
        }
        // Served by a cluster owner.  Remote copies only matter if
        // they may exist: a read-for-ownership must invalidate them; a
        // plain read must gather their CH (for the owner's CH:O/M).
        if (!mayBeRemote(req.line)) {
            ++stats_.upFiltered;
            return {};
        }
        if (req.sig.im) {
            SlaveResult res =
                forwardUp(req, BusCmd::AddrOnly, kInvalidate, local_ch, {}, {});
            remoteShared_.erase(req.line);
            return res;
        }
        return forwardUp(req, BusCmd::Read, req.sig, local_ch, {}, {});

      case BusCmd::WriteWord:
        if (req.sig.bc) {
            if (req.sig.ca) {
                localHeld_.insert(req.line);
                // A broadcasting cache master ends the transaction as
                // the line's owner (CH:O/M), so root memory need not
                // see the write when no remote copy may exist - the
                // ownership invariant covers the stale memory.
                if (!mayBeRemote(req.line)) {
                    ++stats_.upFiltered;
                    return {};
                }
            }
            // Otherwise (remote copies possible, or a non-owning
            // col-10 broadcast) the write must reach the root.
            return forwardUp(req, BusCmd::WriteWord, req.sig, local_ch,
                             {}, {});
        }
        if (local_owner) {
            // Captured by the cluster owner; invalidate remote copies.
            if (!mayBeRemote(req.line)) {
                ++stats_.upFiltered;
                return {};
            }
            SlaveResult res =
                forwardUp(req, BusCmd::AddrOnly, kInvalidate, local_ch, {}, {});
            remoteShared_.erase(req.line);
            return res;
        }
        // Write-through to memory (a remote owner may capture via DI).
        return forwardUp(req, BusCmd::WriteWord, req.sig, local_ch, {}, {});

      case BusCmd::WriteLine:
        // Pushes always update root memory; remote holders respond CH
        // (resolving a Pass's CH:S/E).
        return forwardUp(req, BusCmd::WriteLine, req.sig, local_ch, {},
                         req.wline);

      case BusCmd::AddrOnly:
        if (!mayBeRemote(req.line)) {
            ++stats_.upFiltered;
            return {};
        }
        {
            SlaveResult res =
                forwardUp(req, BusCmd::AddrOnly, req.sig, local_ch, {},
                          {});
            remoteShared_.erase(req.line);
            return res;
        }

      case BusCmd::Sync:
        break;
    }
    fbsim_panic("unreachable");
}

SnoopReply
BusBridge::snoop(const BusRequest &req)
{
    fbsim_assert(leaf_ != nullptr);
    pendingValid_ = false;
    SnoopReply reply;
    if (req.cmd == BusCmd::Sync)
        fbsim_fatal("Sync commands do not propagate across bus bridges");

    // Track what the rest of the system caches: any transaction whose
    // master asserts CA leaves a retained copy somewhere remote.
    bool will_retain_remote = req.sig.ca;

    if (!mayBeLocal(req.line)) {
        ++stats_.downFiltered;
        if (will_retain_remote)
            remoteShared_.insert(req.line);
        return reply;
    }

    BusRequest down = req;
    down.master = leafId_;
    down.fromBridge = true;
    if (conservativeCh_)
        down.chHint = true;
    ++stats_.downForwards;
    BusResult r = leaf_->execute(down);

    if (req.cmd == BusCmd::Read && r.resp.di) {
        pendingLine_.swap(r.line);
        pendingValid_ = true;
        ++stats_.remoteInterventions;
    }
    if (!r.line.empty())
        leaf_->recycleLineBuffer(std::move(r.line));

    // Did the down-forward clear the cluster?  A read-for-modify or
    // invalidate kills every copy; a plain (col 9) write leaves a
    // capturing owner alive.
    if (req.sig.im && !req.sig.bc && !r.resp.di)
        localHeld_.erase(req.line);
    if (req.cmd == BusCmd::AddrOnly ||
        (req.cmd == BusCmd::Read && req.sig.im)) {
        localHeld_.erase(req.line);
    }

    if (will_retain_remote)
        remoteShared_.insert(req.line);

    reply.resp.ch = r.resp.ch;
    reply.resp.di = r.resp.di;
    reply.resp.sl = r.resp.sl;
    fbsim_assert(!r.resp.bs);
    return reply;
}

void
BusBridge::supplyLine(const BusRequest &req, std::span<Word> out)
{
    fbsim_assert(pendingValid_);
    fbsim_assert(out.size() == pendingLine_.size());
    (void)req;
    std::copy(pendingLine_.begin(), pendingLine_.end(), out.begin());
}

void
BusBridge::commit(const BusRequest &, bool)
{
    // The cluster already committed during the down-forward.
    pendingValid_ = false;
}

void
BusBridge::performAbortPush(const BusRequest &)
{
    fbsim_panic("bridges never assert BS");
}

} // namespace fbsim
