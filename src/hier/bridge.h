/**
 * @file
 * Inter-bus bridge for the multi-bus hierarchy (the paper's section 6:
 * "how one might implement a system with multiple buses and still
 * maintain consistency" - flagged there as future work; fbsim's answer
 * follows the hierarchical-snooping approach).
 *
 * A BusBridge couples one leaf bus (a cluster of caches) to the root
 * bus (which hosts main memory and the other clusters):
 *
 *   - On the leaf side, the bridge IS the bus's memory slave: every
 *     leaf transaction that needs memory or cross-cluster visibility
 *     is forwarded up as a root transaction, and the root responses
 *     (CH from remote caches, DI from remote owners, data) flow back
 *     into the leaf transaction.
 *   - On the root side, the bridge is a snooper: a transaction by
 *     another root master is forwarded down into the leaf bus (marked
 *     fromBridge, so the leaf slave stays out of it), and the cluster's
 *     aggregated responses - including an owning cache's intervention
 *     data - are presented on the root bus.
 *
 * Two conservative filters give the hierarchy its point (locality):
 *
 *   - remoteShared: lines that may be cached outside this cluster.
 *     Maintained from observed root traffic; invalidating forwards
 *     clear it.  Up-forwards that exist only to maintain remote copies
 *     (CH gathering on locally-served reads, invalidations) are
 *     skipped when the line cannot be remote.
 *   - localHeld: lines that may be cached inside this cluster
 *     (inclusion set; silent drops leave stale entries, which is safe).
 *     Down-forwards are skipped when the cluster cannot hold the line.
 *
 * Restrictions (checked): the hierarchy supports MOESI-class caches
 * (no BS abort protocols on leaf buses below a shared line - aborts
 * cannot propagate across buses) and no Sync commands across bridges.
 */

#ifndef FBSIM_HIER_BRIDGE_H_
#define FBSIM_HIER_BRIDGE_H_

#include <unordered_set>
#include <vector>

#include "bus/bus.h"

namespace fbsim {

/** Statistics of one bridge. */
struct BridgeStats
{
    std::uint64_t upForwards = 0;      ///< leaf -> root transactions
    std::uint64_t upFiltered = 0;      ///< skipped by remoteShared
    std::uint64_t downForwards = 0;    ///< root -> leaf transactions
    std::uint64_t downFiltered = 0;    ///< skipped by localHeld
    std::uint64_t remoteInterventions = 0; ///< data served from cluster
};

/** Couples a leaf bus to the root bus. */
class BusBridge : public MemorySlave, public Snooper
{
  public:
    /**
     * @param root_id this bridge's master id on the root bus.
     * @param leaf_id this bridge's master id on the leaf bus (for
     *        down-forwarded transactions).
     * @param root the root bus (attach() this bridge separately).
     * @param words_per_line system line size in words.
     */
    BusBridge(MasterId root_id, MasterId leaf_id, Bus &root,
              std::size_t words_per_line);

    /** Late-bind the leaf bus (constructed after the bridge, since the
     *  leaf Bus needs this bridge as its slave). */
    void setLeafBus(Bus *leaf);

    // MemorySlave (leaf side).
    std::size_t wordsPerLine() const override { return wordsPerLine_; }
    SlaveResult transact(const BusRequest &req, bool local_owner,
                         bool local_ch,
                         std::span<Word> read_out) override;

    /**
     * Conservative CH mode for hierarchies with more than two
     * clusters: down-forwarded transactions resolve CH conditionals as
     * if remote sharers existed (a legal note 9/10 weakening), since a
     * third cluster's CH is not yet known during this bus's address
     * phase.
     */
    void setConservativeCh(bool on) { conservativeCh_ = on; }

    // Snooper (root side).
    MasterId snooperId() const override { return rootId_; }
    SnoopReply snoop(const BusRequest &req) override;
    void supplyLine(const BusRequest &req, std::span<Word> out) override;
    void commit(const BusRequest &req, bool others_ch) override;
    void performAbortPush(const BusRequest &req) override;

    BridgeStats &stats() { return stats_; }
    const BridgeStats &stats() const { return stats_; }

    /** Conservative test: may the line be cached in this cluster? */
    bool mayBeLocal(LineAddr la) const { return localHeld_.count(la); }

    /** Conservative test: may the line be cached outside it? */
    bool mayBeRemote(LineAddr la) const
    { return remoteShared_.count(la); }

  private:
    /** Forward a leaf transaction up to the root bus. */
    SlaveResult forwardUp(const BusRequest &req, BusCmd cmd,
                          MasterSignals sig, bool local_ch,
                          std::span<Word> read_out,
                          std::span<const Word> wline);

    MasterId rootId_;
    MasterId leafId_;
    Bus &root_;
    Bus *leaf_ = nullptr;
    std::size_t wordsPerLine_;
    BridgeStats stats_;

    bool conservativeCh_ = false;
    std::unordered_set<LineAddr> remoteShared_;
    std::unordered_set<LineAddr> localHeld_;

    /** Line data fetched from the cluster between snoop and supply. */
    std::vector<Word> pendingLine_;
    bool pendingValid_ = false;
};

} // namespace fbsim

#endif // FBSIM_HIER_BRIDGE_H_
