/**
 * @file
 * Inter-bus bridge for the multi-bus hierarchy (the paper's section 6:
 * "how one might implement a system with multiple buses and still
 * maintain consistency" - flagged there as future work; fbsim's answer
 * follows the hierarchical-snooping approach).
 *
 * A BusBridge couples one leaf bus (a cluster of caches) to the root
 * bus (which hosts main memory and the other clusters):
 *
 *   - On the leaf side, the bridge IS the bus's memory slave: every
 *     leaf transaction that needs memory or cross-cluster visibility
 *     is forwarded up as a root transaction, and the root responses
 *     (CH from remote caches, DI from remote owners, data) flow back
 *     into the leaf transaction.
 *   - On the root side, the bridge is a snooper: a transaction by
 *     another root master is forwarded down into the leaf bus (marked
 *     fromBridge, so the leaf slave stays out of it), and the cluster's
 *     aggregated responses - including an owning cache's intervention
 *     data - are presented on the root bus.
 *
 * Two conservative filters give the hierarchy its point (locality):
 *
 *   - remoteShared: lines that may be cached outside this cluster.
 *     Maintained from observed root traffic; invalidating forwards
 *     clear it.  Up-forwards that exist only to maintain remote copies
 *     (CH gathering on locally-served reads, invalidations) are
 *     skipped when the line cannot be remote.
 *   - localHeld: lines that may be cached inside this cluster
 *     (inclusion set; silent drops leave stale entries, which is safe).
 *     Down-forwards are skipped when the cluster cannot hold the line.
 *
 * Restrictions (checked): the hierarchy supports MOESI-class caches
 * (no BS abort protocols on leaf buses below a shared line - aborts
 * cannot propagate across buses) and no Sync commands across bridges.
 */

#ifndef FBSIM_HIER_BRIDGE_H_
#define FBSIM_HIER_BRIDGE_H_

#include <unordered_set>
#include <vector>

#include "bus/bus.h"
#include "fault/fault_injector.h"

namespace fbsim {

/** Statistics of one bridge. */
struct BridgeStats
{
    std::uint64_t upForwards = 0;      ///< leaf -> root transactions
    std::uint64_t upFiltered = 0;      ///< skipped by remoteShared
    std::uint64_t downForwards = 0;    ///< root -> leaf transactions
    std::uint64_t downFiltered = 0;    ///< skipped by localHeld
    std::uint64_t remoteInterventions = 0; ///< data served from cluster
    // Resilience counters (all zero in fault-free runs).
    std::uint64_t forwardRetries = 0;  ///< dropped forwards re-sent
    std::uint64_t forwardBackoffCycles = 0; ///< backoff charged
    std::uint64_t forwardExhausted = 0; ///< forwards given up (the
                                        ///< leaf bus re-drives them)
    std::uint64_t dupForwards = 0;     ///< duplicated deliveries
    std::uint64_t delayedForwards = 0; ///< forwards with extra latency
    std::uint64_t stallWindows = 0;    ///< leaf-stall windows opened
    std::uint64_t stallDrops = 0;      ///< forwards lost to stalls
    std::uint64_t downAborts = 0;      ///< failed down-forwards that
                                       ///< BS-aborted the root bus
    std::uint64_t staleFilterSkips = 0; ///< filter erases suppressed
    std::uint64_t watchdogTrips = 0;   ///< consecutive-exhaust trips
    std::uint64_t scrubbedEntries = 0; ///< filter divergence repaired
    std::uint64_t salvagedLines = 0;   ///< dirty lines latched against
                                       ///< a root abort (im forwards)
    std::uint64_t salvageServes = 0;   ///< retries served from the
                                       ///< salvage buffer

    bool operator==(const BridgeStats &) const = default;
};

/**
 * One filter audit's findings, split by direction.  "Stale" entries
 * (present in the filter, absent from the TagStores) are the safe,
 * wasteful direction silent drops and injected filterStale faults
 * produce; "missing" entries would be unsafe (a skipped forward that
 * was needed) and must stay zero outside quarantine windows - the
 * hierarchical checker's H1/H2 invariants enforce exactly that.
 */
struct FilterAudit
{
    std::uint64_t staleLocal = 0;    ///< localHeld entries not held
    std::uint64_t missingLocal = 0;  ///< held lines absent from filter
    std::uint64_t staleRemote = 0;   ///< remoteShared entries not held
    std::uint64_t missingRemote = 0; ///< remote lines absent from filter

    std::uint64_t
    total() const
    {
        return staleLocal + missingLocal + staleRemote + missingRemote;
    }

    FilterAudit &
    operator+=(const FilterAudit &o)
    {
        staleLocal += o.staleLocal;
        missingLocal += o.missingLocal;
        staleRemote += o.staleRemote;
        missingRemote += o.missingRemote;
        return *this;
    }
};

/** Couples a leaf bus to the root bus. */
class BusBridge : public MemorySlave, public Snooper
{
  public:
    /**
     * @param root_id this bridge's master id on the root bus.
     * @param leaf_id this bridge's master id on the leaf bus (for
     *        down-forwarded transactions).
     * @param root the root bus (attach() this bridge separately).
     * @param words_per_line system line size in words.
     */
    BusBridge(MasterId root_id, MasterId leaf_id, Bus &root,
              std::size_t words_per_line);

    /** Late-bind the leaf bus (constructed after the bridge, since the
     *  leaf Bus needs this bridge as its slave). */
    void setLeafBus(Bus *leaf);

    // MemorySlave (leaf side).
    std::size_t wordsPerLine() const override { return wordsPerLine_; }
    SlaveResult transact(const BusRequest &req, bool local_owner,
                         bool local_ch,
                         std::span<Word> read_out) override;

    /**
     * Conservative CH mode for hierarchies with more than two
     * clusters: down-forwarded transactions resolve CH conditionals as
     * if remote sharers existed (a legal note 9/10 weakening), since a
     * third cluster's CH is not yet known during this bus's address
     * phase.
     */
    void setConservativeCh(bool on) { conservativeCh_ = on; }

    // Snooper (root side).
    MasterId snooperId() const override { return rootId_; }
    SnoopReply snoop(const BusRequest &req) override;
    void supplyLine(const BusRequest &req, std::span<Word> out) override;
    void commit(const BusRequest &req, bool others_ch) override;
    void performAbortPush(const BusRequest &req) override;

    BridgeStats &stats() { return stats_; }
    const BridgeStats &stats() const { return stats_; }

    /** Conservative test: may the line be cached in this cluster? */
    bool mayBeLocal(LineAddr la) const { return localHeld_.count(la); }

    /** Conservative test: may the line be cached outside it? */
    bool mayBeRemote(LineAddr la) const
    { return remoteShared_.count(la); }

    /**
     * Arm this bridge's fault sites.  `cluster` keys the site names
     * ("bridge<cluster>.drop" etc.), so every bridge draws from its
     * own name-derived streams and assembling additional clusters
     * never shifts an existing bridge's schedule.  Null disarms.
     */
    void setFaultInjector(FaultInjector *faults, std::size_t cluster);

    /**
     * Cross-bus forward retry policy: a dropped/stalled forward is
     * re-sent up to `retries` times, charging `backoff_base << k`
     * cycles before retry k; after that the forward is reported
     * dropped and the leaf bus's own retry machinery re-drives the
     * whole transaction.
     */
    void setForwardRetryPolicy(unsigned retries, Cycles backoff_base)
    {
        maxForwardRetries_ = retries;
        backoffBase_ = backoff_base;
    }

    /** Consecutive forward exhaustions before the per-bridge livelock
     *  watchdog trips (stats().watchdogTrips). */
    void setWatchdogThreshold(unsigned exhausts)
    { watchdogThreshold_ = exhausts; }

    /**
     * Maintenance bypass: while set, forwards draw no faults and any
     * open stall window is frozen.  Segment quarantine/reintegration
     * flushes run under it - P896 live-removal holds the backplane in
     * a quiesced window, so maintenance traffic is not exposed to the
     * modeled transient faults (and quarantine flushes provably
     * converge, keeping owned data intact).
     */
    void setMaintenanceBypass(bool on) { maintenance_ = on; }

    /**
     * Audit (and with `repair` fix) both filters against the exact
     * per-cluster presence sets recomputed from the leaf TagStores:
     * `local` = lines valid inside this cluster, `remote` = lines
     * valid in any other cluster.  Returns the divergence found;
     * repairs count into stats().scrubbedEntries.
     */
    FilterAudit auditFilters(const std::unordered_set<LineAddr> &local,
                             const std::unordered_set<LineAddr> &remote,
                             bool repair);

  private:
    /** Forward a leaf transaction up to the root bus. */
    SlaveResult forwardUp(const BusRequest &req, BusCmd cmd,
                          MasterSignals sig, bool local_ch,
                          std::span<Word> read_out,
                          std::span<const Word> wline);

    /** Is this forward attempt lost (injected drop or stall)? */
    bool forwardLost();

    /** Filter erases, routed through the filterStale fault site. */
    void eraseRemoteShared(LineAddr la);
    void eraseLocalHeld(LineAddr la);

    MasterId rootId_;
    MasterId leafId_;
    Bus &root_;
    Bus *leaf_ = nullptr;
    std::size_t wordsPerLine_;
    BridgeStats stats_;

    bool conservativeCh_ = false;
    std::unordered_set<LineAddr> remoteShared_;
    std::unordered_set<LineAddr> localHeld_;

    // Fault plumbing (null/idle in fault-free runs: forwards pay one
    // branch on faults_ and nothing else).
    FaultInjector *faults_ = nullptr;
    FaultSite *dropSite_ = nullptr;
    FaultSite *delaySite_ = nullptr;
    FaultSite *dupSite_ = nullptr;
    FaultSite *staleSite_ = nullptr;
    FaultSite *stallSite_ = nullptr;
    std::size_t cluster_ = 0;
    unsigned maxForwardRetries_ = 4;
    Cycles backoffBase_ = 2;
    unsigned watchdogThreshold_ = 4;
    unsigned stallRemaining_ = 0;   ///< forwards left in the window
    unsigned exhaustStreak_ = 0;    ///< consecutive exhausted forwards
    bool maintenance_ = false;

    /** Line data fetched from the cluster between snoop and supply. */
    std::vector<Word> pendingLine_;
    bool pendingValid_ = false;

    /**
     * Dirty data captured by an invalidating down-forward, retained
     * until a root transaction actually delivers the line.  The
     * down-forward commits the cluster during the root SNOOP phase:
     * if the root attempt then aborts (spurious-abort injection draws
     * after the snoops), the supplying owner is already invalidated
     * and this buffer is the only copy anywhere.  The bridge stays
     * the line's owner of record, serving retries with DI from here;
     * commit() of a Read on the line releases it.
     */
    std::vector<Word> salvagedLine_;
    LineAddr salvagedAddr_ = 0;
    bool salvagedValid_ = false;
};

} // namespace fbsim

#endif // FBSIM_HIER_BRIDGE_H_
