#include "hier/hier_system.h"

#include "common/logging.h"

namespace fbsim {

namespace {

/** Leaf-bus master id reserved for the bridge's down-forwards. */
constexpr MasterId kBridgeLeafId = 0xfffe;

/** Cap on recorded violations (mirrors System). */
constexpr std::size_t kMaxRecordedViolations = 1000;

} // namespace

HierSystem::HierSystem(const HierConfig &config, std::size_t clusters)
    : config_(config)
{
    fbsim_assert(clusters >= 1);
    std::size_t words = config_.lineBytes / kWordBytes;
    memory_ = std::make_unique<MainMemory>(words);
    rootSlave_ = std::make_unique<MainMemorySlave>(*memory_);
    rootBus_ = std::make_unique<Bus>(*rootSlave_, config_.rootCost,
                                     config_.maxBusRetries);
    rootBus_->setSnoopFilterEnabled(config_.snoopFilter);
    rootBus_->setSnoopCrossCheck(config_.snoopFilterCrossCheck);
    checker_ =
        std::make_unique<CoherenceChecker>(*memory_, config_.lineBytes);
    // The checker observes every bus so incremental per-access scans
    // see lines dirtied by any cluster's transactions; the tracking is
    // skipped entirely when nothing will consume the dirty set.
    rootBus_->addTraceSink(checker_.get());
    checker_->setTrackDirty(config_.checkEveryAccess &&
                            config_.incrementalCheck);

    clusters_.resize(clusters);
    for (std::size_t i = 0; i < clusters; ++i) {
        Cluster &cluster = clusters_[i];
        cluster.bridge = std::make_unique<BusBridge>(
            static_cast<MasterId>(i), kBridgeLeafId, *rootBus_, words);
        cluster.bus = std::make_unique<Bus>(
            *cluster.bridge, config_.leafCost, config_.maxBusRetries);
        cluster.bus->setSnoopFilterEnabled(config_.snoopFilter);
        cluster.bus->setSnoopCrossCheck(config_.snoopFilterCrossCheck);
        cluster.bus->addTraceSink(checker_.get());
        cluster.bridge->setLeafBus(cluster.bus.get());
        rootBus_->attach(cluster.bridge.get());
        // With three or more clusters a third cluster's CH cannot be
        // gathered during another leaf's address phase; resolve CH
        // conditionals conservatively (legal per notes 9/10).
        cluster.bridge->setConservativeCh(clusters > 2);
    }
}

HierSystem::~HierSystem() = default;

MasterId
HierSystem::addCache(std::size_t cluster, const CacheSpec &spec)
{
    fbsim_assert(cluster < clusters_.size());
    switch (spec.protocol) {
      case ProtocolKind::Moesi:
      case ProtocolKind::Berkeley:
      case ProtocolKind::Dragon:
        break;
      default:
        fbsim_fatal("hierarchical systems require MOESI-class "
                    "protocols (no BS aborts); %s is not one",
                    std::string(protocolKindName(spec.protocol))
                        .c_str());
    }

    Cluster &c = clusters_[cluster];
    SnoopingCacheConfig cfg;
    cfg.geometry = {config_.lineBytes, spec.numSets, spec.assoc};
    cfg.replacement = spec.replacement;
    cfg.kind = spec.writeThrough ? ClientKind::WriteThrough
                                 : ClientKind::CopyBack;
    cfg.seed = spec.seed;
    cfg.discardNearReplacement = spec.discardNearReplacement;

    auto cache = std::make_unique<SnoopingCache>(
        c.nextLeafId++, *c.bus, protocolTable(spec.protocol),
        makeChooser(spec.chooser, spec.policy, spec.seed), cfg);
    c.bus->attach(cache.get());
    checker_->addCache(cache.get());

    MasterId id = static_cast<MasterId>(clients_.size());
    SnoopingCache *raw = cache.get();
    clients_.push_back({cluster, std::move(cache), raw});
    return id;
}

MasterId
HierSystem::addNonCachingMaster(std::size_t cluster,
                                bool broadcast_writes)
{
    fbsim_assert(cluster < clusters_.size());
    Cluster &c = clusters_[cluster];
    auto master = std::make_unique<NonCachingMaster>(
        c.nextLeafId++, *c.bus, config_.lineBytes, broadcast_writes);
    MasterId id = static_cast<MasterId>(clients_.size());
    clients_.push_back({cluster, std::move(master), nullptr});
    return id;
}

AccessOutcome
HierSystem::read(MasterId id, Addr addr)
{
    fbsim_assert(id < clients_.size());
    AccessOutcome outcome = clients_[id].client->read(addr);
    if (outcome.value != checker_->expected(addr) &&
        violations_.size() < kMaxRecordedViolations)
        violations_.push_back(checker_->noteRead(addr, outcome.value));
    if (config_.checkEveryAccess)
        afterAccess();
    return outcome;
}

AccessOutcome
HierSystem::write(MasterId id, Addr addr, Word value)
{
    fbsim_assert(id < clients_.size());
    AccessOutcome outcome = clients_[id].client->write(addr, value);
    checker_->noteWrite(addr, value);
    if (config_.checkEveryAccess)
        afterAccess();
    return outcome;
}

AccessOutcome
HierSystem::flush(MasterId id, Addr addr, bool keep_copy)
{
    fbsim_assert(id < clients_.size());
    AccessOutcome outcome = clients_[id].client->flush(addr, keep_copy);
    if (config_.checkEveryAccess)
        afterAccess();
    return outcome;
}

std::vector<std::string>
HierSystem::checkNow() const
{
    return checker_->checkInvariants();
}

SnoopingCache *
HierSystem::cacheOf(MasterId id)
{
    fbsim_assert(id < clients_.size());
    return clients_[id].cache;
}

std::size_t
HierSystem::clusterOf(MasterId id) const
{
    fbsim_assert(id < clients_.size());
    return clients_[id].cluster;
}

bool
HierSystem::wouldUseBus(MasterId id, bool is_write, Addr addr) const
{
    fbsim_assert(id < clients_.size());
    const SnoopingCache *cache = clients_[id].cache;
    if (!cache)
        return true;
    State s = cache->lineState(addr);
    if (!is_write)
        return s == State::I;
    if (cache->kind() == ClientKind::WriteThrough)
        return true;
    return !(s == State::M || s == State::E);
}

Bus &
HierSystem::leafBus(std::size_t cluster)
{
    fbsim_assert(cluster < clusters_.size());
    return *clusters_[cluster].bus;
}

BusBridge &
HierSystem::bridge(std::size_t cluster)
{
    fbsim_assert(cluster < clusters_.size());
    return *clusters_[cluster].bridge;
}

void
HierSystem::afterAccess()
{
    std::vector<std::string> v = config_.incrementalCheck
                                     ? checker_->checkDirtyLines()
                                     : checker_->checkInvariants();
    for (std::string &s : v) {
        if (violations_.size() >= kMaxRecordedViolations)
            break;
        violations_.push_back(std::move(s));
    }
}

} // namespace fbsim
