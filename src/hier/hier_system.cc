#include "hier/hier_system.h"

#include "common/logging.h"

namespace fbsim {

namespace {

/** Leaf-bus master id reserved for the bridge's down-forwards. */
constexpr MasterId kBridgeLeafId = 0xfffe;

/** Cap on recorded violations (mirrors System). */
constexpr std::size_t kMaxRecordedViolations = 1000;

/** rejoinDue_ sentinel: no reintegration scheduled. */
constexpr Cycles kNeverDue = ~static_cast<Cycles>(0);

} // namespace

HierSystem::HierSystem(const HierConfig &config, std::size_t clusters)
    : config_(config)
{
    fbsim_assert(clusters >= 1);
    std::size_t words = config_.lineBytes / kWordBytes;
    memory_ = std::make_unique<MainMemory>(words);
    rootSlave_ = std::make_unique<MainMemorySlave>(*memory_);
    rootBus_ = std::make_unique<Bus>(*rootSlave_, config_.rootCost,
                                     config_.maxBusRetries);
    rootBus_->setSnoopFilterEnabled(config_.snoopFilter);
    rootBus_->setSnoopCrossCheck(config_.snoopFilterCrossCheck);
    checker_ =
        std::make_unique<CoherenceChecker>(*memory_, config_.lineBytes);
    // The checker observes every bus so incremental per-access scans
    // see lines dirtied by any cluster's transactions; the tracking is
    // skipped entirely when nothing will consume the dirty set.
    rootBus_->addTraceSink(checker_.get());
    checker_->setTrackDirty(config_.checkEveryAccess &&
                            config_.incrementalCheck);

    if (config_.faults && config_.faults->anyEnabled()) {
        faults_ = std::make_unique<FaultInjector>(*config_.faults);
        // Every bus in the fabric gets the injector: the root so its
        // own sites fire, the leaves so a bridge exhausting its
        // forward retries surfaces a coherent converged=false give-up
        // (not a panic) that the masters' watchdog then sees.
        rootBus_->setFaultInjector(faults_.get());
        rootSlave_->setFaultInjector(faults_.get());
        checker_->setAnnotator(
            [this]() { return faults_->describe(); });
    }

    clusters_.resize(clusters);
    clusterTrips_.assign(clusters, 0);
    bridgeTripsSeen_.assign(clusters, 0);
    clusterQuarantined_.assign(clusters, false);
    rejoinDue_.assign(clusters, kNeverDue);
    for (std::size_t i = 0; i < clusters; ++i) {
        Cluster &cluster = clusters_[i];
        cluster.bridge = std::make_unique<BusBridge>(
            static_cast<MasterId>(i), kBridgeLeafId, *rootBus_, words);
        cluster.bus = std::make_unique<Bus>(
            *cluster.bridge, config_.leafCost, config_.maxBusRetries);
        cluster.bus->setSnoopFilterEnabled(config_.snoopFilter);
        cluster.bus->setSnoopCrossCheck(config_.snoopFilterCrossCheck);
        cluster.bus->addTraceSink(checker_.get());
        cluster.bridge->setLeafBus(cluster.bus.get());
        rootBus_->attach(cluster.bridge.get());
        // With three or more clusters a third cluster's CH cannot be
        // gathered during another leaf's address phase; resolve CH
        // conditionals conservatively (legal per notes 9/10).
        cluster.bridge->setConservativeCh(clusters > 2);
        if (faults_) {
            cluster.bus->setFaultInjector(faults_.get());
            cluster.bridge->setFaultInjector(faults_.get(), i);
            cluster.bridge->setForwardRetryPolicy(
                config_.bridgeForwardRetries, config_.bridgeBackoffBase);
            cluster.bridge->setWatchdogThreshold(
                config_.bridgeWatchdogThreshold);
        }
        // H1/H2: the checker verifies the bridge's conservative
        // filters never unsafely exclude a holder.
        attachFilterChecks(i);
    }
}

HierSystem::~HierSystem() = default;

MasterId
HierSystem::addCache(std::size_t cluster, const CacheSpec &spec)
{
    fbsim_assert(cluster < clusters_.size());
    if (!spec.table) {
        switch (spec.protocol) {
          case ProtocolKind::Moesi:
          case ProtocolKind::Berkeley:
          case ProtocolKind::Dragon:
            break;
          default:
            fbsim_fatal("hierarchical systems require MOESI-class "
                        "protocols (no BS aborts); %s is not one",
                        std::string(protocolKindName(spec.protocol))
                            .c_str());
        }
    }

    Cluster &c = clusters_[cluster];
    SnoopingCacheConfig cfg;
    cfg.geometry = {config_.lineBytes, spec.numSets, spec.assoc};
    cfg.replacement = spec.replacement;
    cfg.kind = spec.writeThrough ? ClientKind::WriteThrough
                                 : ClientKind::CopyBack;
    cfg.seed = spec.seed;
    cfg.discardNearReplacement = spec.discardNearReplacement;

    // spec.table/spec.makeChooser overrides mirror System::addCache:
    // the hier differential drives SequenceChoosers through here.
    const ProtocolTable &table =
        spec.table ? *spec.table : protocolTable(spec.protocol);
    auto chooser = spec.makeChooser
                       ? spec.makeChooser()
                       : makeChooser(spec.chooser, spec.policy,
                                     spec.seed);
    auto cache = std::make_unique<SnoopingCache>(
        c.nextLeafId++, *c.bus, table, std::move(chooser), cfg);
    if (faults_)
        cache->setFaultTolerant(true);
    c.bus->attach(cache.get());
    checker_->addCache(cache.get());
    checker_->setCacheCluster(cache.get(), cluster);

    MasterId id = static_cast<MasterId>(clients_.size());
    SnoopingCache *raw = cache.get();
    clients_.push_back({cluster, std::move(cache), raw});
    noProgress_.push_back(0);
    return id;
}

MasterId
HierSystem::addNonCachingMaster(std::size_t cluster,
                                bool broadcast_writes)
{
    fbsim_assert(cluster < clusters_.size());
    Cluster &c = clusters_[cluster];
    auto master = std::make_unique<NonCachingMaster>(
        c.nextLeafId++, *c.bus, config_.lineBytes, broadcast_writes);
    MasterId id = static_cast<MasterId>(clients_.size());
    clients_.push_back({cluster, std::move(master), nullptr});
    noProgress_.push_back(0);
    return id;
}

AccessOutcome
HierSystem::read(MasterId id, Addr addr)
{
    fbsim_assert(id < clients_.size());
    AccessOutcome outcome = clients_[id].client->read(addr);
    // A faulted read returned no data; blaming the timing fault as
    // corruption would be wrong (mirrors System::read).
    if (!outcome.faulted &&
        outcome.value != checker_->expected(addr) &&
        violations_.size() < kMaxRecordedViolations)
        violations_.push_back(checker_->noteRead(addr, outcome.value));
    postAccess(id, outcome);
    return outcome;
}

AccessOutcome
HierSystem::write(MasterId id, Addr addr, Word value)
{
    fbsim_assert(id < clients_.size());
    AccessOutcome outcome = clients_[id].client->write(addr, value);
    // A faulted write never reached the shared image.
    if (!outcome.faulted)
        checker_->noteWrite(addr, value);
    postAccess(id, outcome);
    return outcome;
}

AccessOutcome
HierSystem::flush(MasterId id, Addr addr, bool keep_copy)
{
    fbsim_assert(id < clients_.size());
    AccessOutcome outcome = clients_[id].client->flush(addr, keep_copy);
    postAccess(id, outcome);
    return outcome;
}

std::vector<std::string>
HierSystem::checkNow() const
{
    return checker_->checkInvariants();
}

SnoopingCache *
HierSystem::cacheOf(MasterId id)
{
    fbsim_assert(id < clients_.size());
    return clients_[id].cache;
}

std::size_t
HierSystem::clusterOf(MasterId id) const
{
    fbsim_assert(id < clients_.size());
    return clients_[id].cluster;
}

bool
HierSystem::wouldUseBus(MasterId id, bool is_write, Addr addr) const
{
    fbsim_assert(id < clients_.size());
    const SnoopingCache *cache = clients_[id].cache;
    if (!cache)
        return true;
    State s = cache->lineState(addr);
    if (!is_write)
        return s == State::I;
    if (cache->kind() == ClientKind::WriteThrough)
        return true;
    return !(s == State::M || s == State::E);
}

Bus &
HierSystem::leafBus(std::size_t cluster)
{
    fbsim_assert(cluster < clusters_.size());
    return *clusters_[cluster].bus;
}

BusBridge &
HierSystem::bridge(std::size_t cluster)
{
    fbsim_assert(cluster < clusters_.size());
    return *clusters_[cluster].bridge;
}

void
HierSystem::afterAccess()
{
    std::vector<std::string> v = config_.incrementalCheck
                                     ? checker_->checkDirtyLines()
                                     : checker_->checkInvariants();
    for (std::string &s : v) {
        if (violations_.size() >= kMaxRecordedViolations)
            break;
        violations_.push_back(std::move(s));
    }
}

void
HierSystem::attachTrace(TraceSink *sink)
{
    fbsim_assert(sink != nullptr);
    trace_ = sink;
    rootBus_->addTraceSink(sink);
    for (Cluster &c : clusters_)
        c.bus->addTraceSink(sink);
}

void
HierSystem::postAccess(MasterId id, const AccessOutcome &outcome)
{
    ++accessCount_;
    if (faults_) {
        if (scheduledRejoins_ > 0)
            serviceRejoins();
        if (outcome.faulted) {
            unsigned &rounds = noProgress_[id];
            if (++rounds >= config_.watchdogRounds) {
                rounds = 0;
                tripCluster(clients_[id].cluster,
                            strprintf("master %u made no forward "
                                      "progress over %u consecutive "
                                      "faulted accesses",
                                      id, config_.watchdogRounds));
            }
        } else {
            noProgress_[id] = 0;
        }
        // The bridges run their own forward watchdog; poll for new
        // trips and charge them to the same per-cluster ladder.
        for (std::size_t k = 0; k < clusters_.size(); ++k) {
            std::uint64_t trips =
                clusters_[k].bridge->stats().watchdogTrips;
            if (trips > bridgeTripsSeen_[k]) {
                bridgeTripsSeen_[k] = trips;
                tripCluster(k, strprintf("bridge %zu forward watchdog "
                                         "tripped",
                                         k));
            }
        }
        if (config_.scrubEveryAccesses > 0 &&
            accessCount_ % config_.scrubEveryAccesses == 0)
            scrubFilters();
        maybeFlipData();
    }
    if (config_.checkEveryAccess)
        afterAccess();
}

void
HierSystem::maybeFlipData()
{
    if (!faults_->shouldFlipData())
        return;
    // Victim selection comes from the data-flip stream itself (as in
    // the flat System); caches in a quarantined segment are isolated
    // from the fabric and excluded.
    std::vector<SnoopingCache *> candidates;
    for (ClientRef &c : clients_) {
        if (c.cache && !c.cache->quarantined() &&
            !clusterQuarantined_[c.cluster])
            candidates.push_back(c.cache);
    }
    if (candidates.empty())
        return;
    Rng &rng = faults_->dataFlipRng();
    SnoopingCache *victim = candidates[rng.below(candidates.size())];
    std::optional<LineAddr> la = victim->corruptRandomBit(rng);
    if (!la)
        return;
    faults_->noteDataFlip();
    // No bus transaction touched the line, so dirty it by hand for
    // the incremental scan.
    checker_->markLineDirty(*la);
    std::string msg = strprintf(
        "data flip: cache %u line 0x%llx %s", victim->clientId(),
        static_cast<unsigned long long>(*la),
        faults_->describe().c_str());
    if (trace_)
        trace_->onInstant("data-flip", kTraceFaultPid,
                          victim->clientId(),
                          rootBus_->stats().busyCycles, msg);
    recordFaultEvent(std::move(msg));
}

void
HierSystem::tripCluster(std::size_t cluster, const std::string &why)
{
    ++watchdogTrips_;
    std::string msg = strprintf(
        "watchdog: cluster %zu: %s %s", cluster, why.c_str(),
        faults_->describe().c_str());
    fbsim_warn("%s", msg.c_str());
    if (trace_)
        trace_->onInstant("watchdog-trip", kTraceFaultPid,
                          static_cast<std::uint32_t>(cluster),
                          rootBus_->stats().busyCycles, msg);
    recordFaultEvent(std::move(msg));
    if (config_.quarantineOnWatchdog &&
        ++clusterTrips_[cluster] >= config_.quarantineAfterTrips)
        quarantineCluster(cluster);
}

void
HierSystem::serviceRejoins()
{
    const Cycles now = rootBus_->stats().busyCycles;
    for (std::size_t k = 0; k < rejoinDue_.size(); ++k) {
        if (rejoinDue_[k] != kNeverDue && now >= rejoinDue_[k])
            reintegrateCluster(k);
    }
}

void
HierSystem::attachFilterChecks(std::size_t k)
{
    BusBridge *b = clusters_[k].bridge.get();
    checker_->attachClusterFilter(
        k, [b](LineAddr la) { return b->mayBeLocal(la); },
        [b](LineAddr la) { return b->mayBeRemote(la); });
}

void
HierSystem::computePresence(
    std::vector<std::unordered_set<LineAddr>> &held) const
{
    held.assign(clusters_.size(), {});
    for (const ClientRef &ref : clients_) {
        if (!ref.cache || ref.cache->quarantined())
            continue;
        std::unordered_set<LineAddr> &mine = held[ref.cluster];
        ref.cache->forEachValidLine(
            [&](const CacheLine &line) { mine.insert(line.addr); });
    }
}

std::uint64_t
HierSystem::scrubFilters()
{
    // Exact presence per cluster, recomputed from the TagStores; each
    // active bridge's filters are audited against them and repaired.
    std::vector<std::unordered_set<LineAddr>> held;
    computePresence(held);
    std::uint64_t divergence = 0;
    for (std::size_t k = 0; k < clusters_.size(); ++k) {
        if (clusterQuarantined_[k])
            continue;   // suspended filters are scrubbed at rejoin
        std::unordered_set<LineAddr> remote;
        for (std::size_t j = 0; j < clusters_.size(); ++j) {
            if (j != k)
                remote.insert(held[j].begin(), held[j].end());
        }
        FilterAudit audit = clusters_[k].bridge->auditFilters(
            held[k], remote, /*repair=*/true);
        if (audit.total() > 0 && trace_) {
            trace_->onInstant(
                "filter-scrub", kTraceFaultPid,
                static_cast<std::uint32_t>(k),
                rootBus_->stats().busyCycles,
                strprintf("bridge %zu: %llu stale, %llu missing "
                          "entries repaired %s",
                          k,
                          static_cast<unsigned long long>(
                              audit.staleLocal + audit.staleRemote),
                          static_cast<unsigned long long>(
                              audit.missingLocal + audit.missingRemote),
                          faults_ ? faults_->describe().c_str() : ""));
        }
        divergence += audit.total();
    }
    scrubDivergence_ += divergence;
    return divergence;
}

bool
HierSystem::quarantineCluster(std::size_t cluster)
{
    fbsim_assert(cluster < clusters_.size());
    if (!faults_ || clusterQuarantined_[cluster])
        return false;
    ++quarantines_;
    std::string msg = strprintf(
        "quarantine: leaf segment %zu flushed and isolated %s", cluster,
        faults_->describe().c_str());
    fbsim_warn("%s", msg.c_str());
    if (trace_)
        trace_->onInstant("quarantine", kTraceFaultPid,
                          static_cast<std::uint32_t>(cluster),
                          rootBus_->stats().busyCycles, msg);
    recordFaultEvent(std::move(msg));

    // P896 live removal: the whole board-bus leaves under a quiesced
    // window - no site fires while owned data drains to memory, so the
    // flushes provably converge and nothing is lost.
    Cluster &c = clusters_[cluster];
    faults_->setQuiesced(true);
    c.bridge->setMaintenanceBypass(true);
    for (ClientRef &ref : clients_) {
        if (ref.cluster != cluster || !ref.cache ||
            ref.cache->quarantined())
            continue;
        ref.cache->quarantine();
        c.bus->setSnooperSuspended(ref.cache->clientId(), true);
        checker_->removeCache(ref.cache);
    }
    c.bridge->setMaintenanceBypass(false);
    faults_->setQuiesced(false);

    // Detached from the root, the bridge neither snoops nor forwards
    // down; its filters lawfully decay until the rejoin scrub.
    rootBus_->setSnooperSuspended(static_cast<MasterId>(cluster), true);
    checker_->detachClusterFilter(cluster);
    clusterQuarantined_[cluster] = true;
    for (std::size_t id = 0; id < clients_.size(); ++id) {
        if (clients_[id].cluster == cluster)
            noProgress_[id] = 0;
    }
    if (config_.reintegrateAfterCycles > 0 &&
        rejoinDue_[cluster] == kNeverDue) {
        rejoinDue_[cluster] = rootBus_->stats().busyCycles +
                              config_.reintegrateAfterCycles;
        ++scheduledRejoins_;
    }
    return true;
}

bool
HierSystem::reintegrateCluster(std::size_t cluster)
{
    fbsim_assert(cluster < clusters_.size());
    if (!clusterQuarantined_[cluster])
        return false;
    if (rejoinDue_[cluster] != kNeverDue) {
        rejoinDue_[cluster] = kNeverDue;
        --scheduledRejoins_;
    }
    Cluster &c = clusters_[cluster];
    for (ClientRef &ref : clients_) {
        if (ref.cluster != cluster || !ref.cache)
            continue;
        if (ref.cache->reintegrate()) {
            c.bus->setSnooperSuspended(ref.cache->clientId(), false);
            checker_->addCache(ref.cache);
        }
    }
    // The rejoined segment's caches are all invalid; scrub the
    // bridge's decayed filters to the exact recomputed presence sets
    // *before* it resumes snooping, so its first down-forward decision
    // is already sound, then re-arm the H1/H2 checks.
    std::vector<std::unordered_set<LineAddr>> held;
    computePresence(held);
    std::unordered_set<LineAddr> remote;
    for (std::size_t j = 0; j < clusters_.size(); ++j) {
        if (j != cluster)
            remote.insert(held[j].begin(), held[j].end());
    }
    FilterAudit audit =
        c.bridge->auditFilters(held[cluster], remote, /*repair=*/true);
    scrubDivergence_ += audit.total();
    rootBus_->setSnooperSuspended(static_cast<MasterId>(cluster),
                                  false);
    attachFilterChecks(cluster);
    clusterQuarantined_[cluster] = false;
    clusterTrips_[cluster] = 0;   // fresh ladder for the rejoined board
    ++reintegrations_;
    std::string msg = strprintf(
        "reintegrate: leaf segment %zu rejoined cold, filters "
        "scrubbed (%llu entries) %s",
        cluster, static_cast<unsigned long long>(audit.total()),
        faults_ ? faults_->describe().c_str() : "");
    fbsim_warn("%s", msg.c_str());
    if (trace_)
        trace_->onInstant("reintegrate", kTraceFaultPid,
                          static_cast<std::uint32_t>(cluster),
                          rootBus_->stats().busyCycles, msg);
    recordFaultEvent(std::move(msg));
    return true;
}

void
HierSystem::recordFaultEvent(std::string event)
{
    if (faultEvents_.size() < kMaxRecordedViolations)
        faultEvents_.push_back(std::move(event));
}

} // namespace fbsim
