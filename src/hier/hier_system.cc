#include "hier/hier_system.h"

#include "common/logging.h"

namespace fbsim {

namespace {

/** Leaf-bus master id reserved for the bridge's down-forwards. */
constexpr MasterId kBridgeLeafId = 0xfffe;

} // namespace

HierSystem::HierSystem(const HierConfig &config, std::size_t clusters)
    : config_(config)
{
    fbsim_assert(clusters >= 1);
    std::size_t words = config_.lineBytes / kWordBytes;
    memory_ = std::make_unique<MainMemory>(words);
    rootSlave_ = std::make_unique<MainMemorySlave>(*memory_);
    rootBus_ = std::make_unique<Bus>(*rootSlave_, config_.rootCost,
                                     config_.maxBusRetries);
    checker_ =
        std::make_unique<CoherenceChecker>(*memory_, config_.lineBytes);

    clusters_.resize(clusters);
    for (std::size_t i = 0; i < clusters; ++i) {
        Cluster &cluster = clusters_[i];
        cluster.bridge = std::make_unique<BusBridge>(
            static_cast<MasterId>(i), kBridgeLeafId, *rootBus_, words);
        cluster.bus = std::make_unique<Bus>(
            *cluster.bridge, config_.leafCost, config_.maxBusRetries);
        cluster.bridge->setLeafBus(cluster.bus.get());
        rootBus_->attach(cluster.bridge.get());
        // With three or more clusters a third cluster's CH cannot be
        // gathered during another leaf's address phase; resolve CH
        // conditionals conservatively (legal per notes 9/10).
        cluster.bridge->setConservativeCh(clusters > 2);
    }
}

HierSystem::~HierSystem() = default;

MasterId
HierSystem::addCache(std::size_t cluster, const CacheSpec &spec)
{
    fbsim_assert(cluster < clusters_.size());
    switch (spec.protocol) {
      case ProtocolKind::Moesi:
      case ProtocolKind::Berkeley:
      case ProtocolKind::Dragon:
        break;
      default:
        fbsim_fatal("hierarchical systems require MOESI-class "
                    "protocols (no BS aborts); %s is not one",
                    std::string(protocolKindName(spec.protocol))
                        .c_str());
    }

    Cluster &c = clusters_[cluster];
    SnoopingCacheConfig cfg;
    cfg.geometry = {config_.lineBytes, spec.numSets, spec.assoc};
    cfg.replacement = spec.replacement;
    cfg.kind = spec.writeThrough ? ClientKind::WriteThrough
                                 : ClientKind::CopyBack;
    cfg.seed = spec.seed;
    cfg.discardNearReplacement = spec.discardNearReplacement;

    auto cache = std::make_unique<SnoopingCache>(
        c.nextLeafId++, *c.bus, protocolTable(spec.protocol),
        makeChooser(spec.chooser, spec.policy, spec.seed), cfg);
    c.bus->attach(cache.get());
    checker_->addCache(cache.get());

    MasterId id = static_cast<MasterId>(clients_.size());
    SnoopingCache *raw = cache.get();
    clients_.push_back({cluster, std::move(cache), raw});
    return id;
}

MasterId
HierSystem::addNonCachingMaster(std::size_t cluster,
                                bool broadcast_writes)
{
    fbsim_assert(cluster < clusters_.size());
    Cluster &c = clusters_[cluster];
    auto master = std::make_unique<NonCachingMaster>(
        c.nextLeafId++, *c.bus, config_.lineBytes, broadcast_writes);
    MasterId id = static_cast<MasterId>(clients_.size());
    clients_.push_back({cluster, std::move(master), nullptr});
    return id;
}

AccessOutcome
HierSystem::read(MasterId id, Addr addr)
{
    fbsim_assert(id < clients_.size());
    AccessOutcome outcome = clients_[id].client->read(addr);
    std::string err = checker_->noteRead(addr, outcome.value);
    if (!err.empty() && violations_.size() < 1000)
        violations_.push_back(err);
    if (config_.checkEveryAccess)
        afterAccess();
    return outcome;
}

AccessOutcome
HierSystem::write(MasterId id, Addr addr, Word value)
{
    fbsim_assert(id < clients_.size());
    AccessOutcome outcome = clients_[id].client->write(addr, value);
    checker_->noteWrite(addr, value);
    if (config_.checkEveryAccess)
        afterAccess();
    return outcome;
}

AccessOutcome
HierSystem::flush(MasterId id, Addr addr, bool keep_copy)
{
    fbsim_assert(id < clients_.size());
    AccessOutcome outcome = clients_[id].client->flush(addr, keep_copy);
    if (config_.checkEveryAccess)
        afterAccess();
    return outcome;
}

std::vector<std::string>
HierSystem::checkNow() const
{
    return checker_->checkInvariants();
}

SnoopingCache *
HierSystem::cacheOf(MasterId id)
{
    fbsim_assert(id < clients_.size());
    return clients_[id].cache;
}

std::size_t
HierSystem::clusterOf(MasterId id) const
{
    fbsim_assert(id < clients_.size());
    return clients_[id].cluster;
}

bool
HierSystem::wouldUseBus(MasterId id, bool is_write, Addr addr) const
{
    fbsim_assert(id < clients_.size());
    const SnoopingCache *cache = clients_[id].cache;
    if (!cache)
        return true;
    State s = cache->lineState(addr);
    if (!is_write)
        return s == State::I;
    if (cache->kind() == ClientKind::WriteThrough)
        return true;
    return !(s == State::M || s == State::E);
}

Bus &
HierSystem::leafBus(std::size_t cluster)
{
    fbsim_assert(cluster < clusters_.size());
    return *clusters_[cluster].bus;
}

BusBridge &
HierSystem::bridge(std::size_t cluster)
{
    fbsim_assert(cluster < clusters_.size());
    return *clusters_[cluster].bridge;
}

void
HierSystem::afterAccess()
{
    std::vector<std::string> v = checker_->checkInvariants();
    violations_.insert(violations_.end(), v.begin(), v.end());
}

} // namespace fbsim
