/**
 * @file
 * Reference streams: the interface between workloads and the timed
 * engine.  A stream produces an endless sequence of (read/write,
 * address) references for one processor.
 */

#ifndef FBSIM_TRACE_REF_STREAM_H_
#define FBSIM_TRACE_REF_STREAM_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.h"

namespace fbsim {

/** One processor reference. */
struct ProcRef
{
    bool write = false;
    Addr addr = 0;
};

/** An endless per-processor reference source. */
class RefStream
{
  public:
    virtual ~RefStream() = default;

    /** Produce the next reference. */
    virtual ProcRef next() = 0;

    /**
     * Produce the next `n` references into `out`, exactly the
     * sequence n calls to next() would yield.  The default loops
     * next(); generators with a cheap inner loop override it so batch
     * consumers (the speculative engine) skip the virtual dispatch
     * per reference.
     */
    virtual void
    nextBatch(ProcRef *out, std::size_t n)
    {
        for (std::size_t k = 0; k < n; ++k)
            out[k] = next();
    }
};

/** Replays a fixed vector, cycling when exhausted. */
class VectorStream : public RefStream
{
  public:
    explicit VectorStream(std::vector<ProcRef> refs)
        : refs_(std::move(refs))
    {
    }

    ProcRef
    next() override
    {
        ProcRef r = refs_[pos_];
        pos_ = (pos_ + 1) % refs_.size();
        return r;
    }

    void
    nextBatch(ProcRef *out, std::size_t n) override
    {
        for (std::size_t k = 0; k < n; ++k) {
            out[k] = refs_[pos_];
            pos_ = (pos_ + 1) % refs_.size();
        }
    }

  private:
    std::vector<ProcRef> refs_;
    std::size_t pos_ = 0;
};

/**
 * Replays a borrowed span, cycling when exhausted.  Non-owning
 * VectorStream: campaign workers replay shared trace shards through
 * this to keep per-job allocation off the hot path; the span must
 * outlive the stream and must not be empty.
 */
class SpanStream : public RefStream
{
  public:
    explicit SpanStream(std::span<const ProcRef> refs) : refs_(refs) {}

    ProcRef
    next() override
    {
        ProcRef r = refs_[pos_];
        pos_ = (pos_ + 1) % refs_.size();
        return r;
    }

    void
    nextBatch(ProcRef *out, std::size_t n) override
    {
        for (std::size_t k = 0; k < n; ++k) {
            out[k] = refs_[pos_];
            pos_ = (pos_ + 1) % refs_.size();
        }
    }

  private:
    std::span<const ProcRef> refs_;
    std::size_t pos_ = 0;
};

} // namespace fbsim

#endif // FBSIM_TRACE_REF_STREAM_H_
