/**
 * @file
 * Synthetic workload generators.
 *
 * The paper's performance discussion (section 5.2) rests on the
 * Archibald & Baer simulations [Arch85], which in turn use the Dubois &
 * Briggs program-behaviour model [Dubo82]: each processor issues a
 * stream of references, a fraction of which go to shared blocks, with
 * given write probabilities.  Arch85Workload implements that model;
 * the named kernels (ping-pong/migratory, producer-consumer,
 * read-mostly, private) exercise the sharing patterns that separate
 * update from invalidate protocols.
 *
 * All generators are deterministic given their seed.
 */

#ifndef FBSIM_TRACE_WORKLOADS_H_
#define FBSIM_TRACE_WORKLOADS_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "trace/ref_stream.h"

namespace fbsim {

/** Parameters of the [Arch85]/[Dubo82]-style synthetic model. */
struct Arch85Params
{
    std::size_t lineBytes = 32;

    /** Shared region: number of shared lines (uniformly referenced). */
    std::size_t sharedLines = 16;

    /** Private region: per-processor pool of lines. */
    std::size_t privateLines = 256;

    /** Probability a reference targets the shared region. */
    double pShared = 0.05;

    /** Probability a shared reference is a write. */
    double pSharedWrite = 0.30;

    /** Probability a private reference is a write. */
    double pPrivateWrite = 0.25;

    /**
     * Temporal locality of private references: probability of
     * re-referencing the most recent private line; deeper lines follow
     * geometrically.
     */
    double pLocality = 0.6;
};

/** Per-processor stream following Arch85Params. */
class Arch85Workload : public RefStream
{
  public:
    /** @param params model parameters.
     *  @param proc processor index (selects the private region).
     *  @param seed determinism. */
    Arch85Workload(const Arch85Params &params, std::size_t proc,
                   std::uint64_t seed);

    ProcRef next() override;

    void nextBatch(ProcRef *out, std::size_t n) override;

    /** Base byte address of the shared region (line 0). */
    static Addr sharedBase() { return 0; }

    /** Base byte address of processor `proc`'s private region. */
    Addr privateBase() const;

  private:
    Arch85Params params_;
    std::size_t proc_;
    Addr privateBase_;   ///< hoisted: two multiplies off the hot path
    // The three Bernoulli draws per reference compare a raw generator
    // word against these precomputed integer thresholds, instead of
    // converting the probability per call.
    std::uint64_t sharedThresh_;
    std::uint64_t sharedWriteThresh_;
    std::uint64_t privateWriteThresh_;
    Rng rng_;
};

/**
 * Migratory / ping-pong kernel: all processors take turns
 * read-modify-writing the same few lines (the pattern where
 * invalidate-based protocols shine and ownership migrates).  Each
 * visit to a hot line is one read followed by `writes_per_visit`
 * writes - the burst length is what separates invalidate (one
 * invalidation, then silent M writes) from update (one broadcast per
 * write).
 */
class PingPongWorkload : public RefStream
{
  public:
    PingPongWorkload(std::size_t line_bytes, std::size_t hot_lines,
                     std::size_t proc, std::uint64_t seed,
                     std::size_t writes_per_visit = 1);

    ProcRef next() override;

  private:
    std::size_t lineBytes_;
    std::size_t hotLines_;
    std::size_t writesPerVisit_;
    Rng rng_;
    Addr current_ = 0;
    std::size_t phase_ = 0;
};

/**
 * Producer-consumer kernel: the producer writes words of a shared
 * buffer round-robin; consumers read them.  Actively-shared data where
 * update (broadcast) protocols shine.
 */
class ProducerConsumerWorkload : public RefStream
{
  public:
    /** @param producer true for the writing role. */
    ProducerConsumerWorkload(std::size_t line_bytes,
                             std::size_t buffer_lines, bool producer,
                             std::uint64_t seed);

    ProcRef next() override;

  private:
    std::size_t lineBytes_;
    std::size_t bufferLines_;
    bool producer_;
    Rng rng_;
    std::uint64_t pos_ = 0;
};

/**
 * Read-mostly kernel: everyone reads a shared table; rare writes
 * (e.g. a configuration update) invalidate or update all copies.
 */
class ReadMostlyWorkload : public RefStream
{
  public:
    ReadMostlyWorkload(std::size_t line_bytes, std::size_t table_lines,
                       double p_write, std::uint64_t seed);

    ProcRef next() override;

  private:
    std::size_t lineBytes_;
    std::size_t tableLines_;
    double pWrite_;
    Rng rng_;
};

/** Purely private working set (no sharing at all). */
class PrivateWorkload : public RefStream
{
  public:
    PrivateWorkload(std::size_t line_bytes, std::size_t lines,
                    double p_write, std::size_t proc, std::uint64_t seed);

    ProcRef next() override;

  private:
    std::size_t lineBytes_;
    std::size_t lines_;
    double pWrite_;
    std::size_t proc_;
    Rng rng_;
};

/** Convenience: build one Arch85 stream per processor. */
std::vector<std::unique_ptr<RefStream>>
makeArch85Streams(const Arch85Params &params, std::size_t procs,
                  std::uint64_t seed);

} // namespace fbsim

#endif // FBSIM_TRACE_WORKLOADS_H_
