#include "trace/workloads.h"

#include "common/logging.h"

namespace fbsim {

namespace {

/** Word-aligned address inside a line. */
Addr
wordIn(Rng &rng, Addr line_base, std::size_t line_bytes)
{
    std::size_t words = line_bytes / kWordBytes;
    return line_base + rng.below(words) * kWordBytes;
}

/** Integer Bernoulli threshold: draw succeeds iff next() < result. */
std::uint64_t
chanceThreshold(double p)
{
    if (p <= 0.0)
        return 0;
    if (p >= 1.0)
        return ~std::uint64_t{0};
    return static_cast<std::uint64_t>(p * 0x1.0p64);
}

} // namespace

Arch85Workload::Arch85Workload(const Arch85Params &params,
                               std::size_t proc, std::uint64_t seed)
    : params_(params), proc_(proc),
      rng_(seed ^ (0x51ed2701ull * (proc + 1)))
{
    fbsim_assert(params.sharedLines > 0);
    fbsim_assert(params.privateLines > 0);
    privateBase_ = (params_.sharedLines +
                    proc_ * params_.privateLines) * params_.lineBytes;
    sharedThresh_ = chanceThreshold(params_.pShared);
    sharedWriteThresh_ = chanceThreshold(params_.pSharedWrite);
    privateWriteThresh_ = chanceThreshold(params_.pPrivateWrite);
}

Addr
Arch85Workload::privateBase() const
{
    // Private regions start past the shared region, one disjoint pool
    // per processor.
    return privateBase_;
}

ProcRef
Arch85Workload::next()
{
    ProcRef ref;
    if (rng_.next() < sharedThresh_) {
        std::size_t line = rng_.below(params_.sharedLines);
        ref.addr = wordIn(rng_, sharedBase() + line * params_.lineBytes,
                          params_.lineBytes);
        ref.write = rng_.next() < sharedWriteThresh_;
    } else {
        // Geometric stack distance approximates LRU temporal locality.
        std::size_t depth = rng_.geometric(params_.pLocality);
        // Nearly every draw is shallower than the pool, so the wrap
        // division is skipped unless actually needed.
        std::size_t line = depth < params_.privateLines
                               ? depth
                               : depth % params_.privateLines;
        ref.addr = wordIn(rng_, privateBase_ + line * params_.lineBytes,
                          params_.lineBytes);
        ref.write = rng_.next() < privateWriteThresh_;
    }
    return ref;
}

void
Arch85Workload::nextBatch(ProcRef *out, std::size_t n)
{
    // Same draw sequence as n calls to next(); the generator state,
    // thresholds and bases live in registers across the loop.
    const std::size_t words = params_.lineBytes / kWordBytes;
    for (std::size_t k = 0; k < n; ++k) {
        ProcRef ref;
        if (rng_.next() < sharedThresh_) {
            std::size_t line = rng_.below(params_.sharedLines);
            Addr base = sharedBase() + line * params_.lineBytes;
            ref.addr = base + rng_.below(words) * kWordBytes;
            ref.write = rng_.next() < sharedWriteThresh_;
        } else {
            std::size_t depth = rng_.geometric(params_.pLocality);
            std::size_t line = depth < params_.privateLines
                                   ? depth
                                   : depth % params_.privateLines;
            Addr base = privateBase_ + line * params_.lineBytes;
            ref.addr = base + rng_.below(words) * kWordBytes;
            ref.write = rng_.next() < privateWriteThresh_;
        }
        out[k] = ref;
    }
}

PingPongWorkload::PingPongWorkload(std::size_t line_bytes,
                                   std::size_t hot_lines,
                                   std::size_t proc, std::uint64_t seed,
                                   std::size_t writes_per_visit)
    : lineBytes_(line_bytes), hotLines_(hot_lines),
      writesPerVisit_(writes_per_visit),
      rng_(seed ^ (0x9d0bull * (proc + 1)))
{
    fbsim_assert(hot_lines > 0);
    fbsim_assert(writes_per_visit > 0);
    current_ = rng_.below(hotLines_) * lineBytes_;
}

ProcRef
PingPongWorkload::next()
{
    // One read then a burst of writes on each hot line, then move on.
    ProcRef ref;
    ref.addr = wordIn(rng_, current_, lineBytes_);
    ref.write = (phase_ >= 1);
    if (++phase_ > writesPerVisit_) {
        phase_ = 0;
        current_ = rng_.below(hotLines_) * lineBytes_;
    }
    return ref;
}

ProducerConsumerWorkload::ProducerConsumerWorkload(
    std::size_t line_bytes, std::size_t buffer_lines, bool producer,
    std::uint64_t seed)
    : lineBytes_(line_bytes), bufferLines_(buffer_lines),
      producer_(producer), rng_(seed)
{
    fbsim_assert(buffer_lines > 0);
}

ProcRef
ProducerConsumerWorkload::next()
{
    std::size_t words = lineBytes_ / kWordBytes;
    std::size_t total_words = bufferLines_ * words;
    ProcRef ref;
    ref.addr = (pos_ % total_words) * kWordBytes;
    ref.write = producer_;
    ++pos_;
    return ref;
}

ReadMostlyWorkload::ReadMostlyWorkload(std::size_t line_bytes,
                                       std::size_t table_lines,
                                       double p_write,
                                       std::uint64_t seed)
    : lineBytes_(line_bytes), tableLines_(table_lines), pWrite_(p_write),
      rng_(seed)
{
    fbsim_assert(table_lines > 0);
}

ProcRef
ReadMostlyWorkload::next()
{
    ProcRef ref;
    std::size_t line = rng_.below(tableLines_);
    ref.addr = wordIn(rng_, line * lineBytes_, lineBytes_);
    ref.write = rng_.chance(pWrite_);
    return ref;
}

PrivateWorkload::PrivateWorkload(std::size_t line_bytes,
                                 std::size_t lines, double p_write,
                                 std::size_t proc, std::uint64_t seed)
    : lineBytes_(line_bytes), lines_(lines), pWrite_(p_write),
      proc_(proc), rng_(seed ^ (0xabcdull * (proc + 1)))
{
    fbsim_assert(lines > 0);
}

ProcRef
PrivateWorkload::next()
{
    // Each processor works in a disjoint region.
    Addr base = (1ull << 32) + proc_ * lines_ * lineBytes_;
    ProcRef ref;
    std::size_t line = rng_.below(lines_);
    ref.addr = wordIn(rng_, base + line * lineBytes_, lineBytes_);
    ref.write = rng_.chance(pWrite_);
    return ref;
}

std::vector<std::unique_ptr<RefStream>>
makeArch85Streams(const Arch85Params &params, std::size_t procs,
                  std::uint64_t seed)
{
    std::vector<std::unique_ptr<RefStream>> out;
    out.reserve(procs);
    for (std::size_t p = 0; p < procs; ++p)
        out.push_back(std::make_unique<Arch85Workload>(params, p, seed));
    return out;
}

} // namespace fbsim
