/**
 * @file
 * Text trace format: one reference per line,
 *
 *     <proc> <R|W> <hex-address>
 *
 * with '#' comments and blank lines ignored.  Traces interleave
 * processors globally (the order is the bus order in the functional
 * layer).
 */

#ifndef FBSIM_TRACE_TRACE_IO_H_
#define FBSIM_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "trace/ref_stream.h"

namespace fbsim {

/** One trace record: a reference attributed to a processor. */
struct TraceRef
{
    MasterId proc = 0;
    bool write = false;
    Addr addr = 0;

    bool operator==(const TraceRef &) const = default;
};

/**
 * Parse a trace from a stream (line-at-a-time; the fallback for
 * non-seekable input).  For in-memory text prefer parseTrace(), which
 * scans in place without per-line stream/string work.
 * @param in input text.
 * @param error_out set to a description on failure.
 * @return the references, empty (with error_out set) on parse error.
 */
std::vector<TraceRef> readTrace(std::istream &in, std::string *error_out);

/**
 * Parse a trace from an in-memory buffer with one in-place scan: no
 * per-line istringstream, no token strings, no number-parse
 * exceptions.  Accepts exactly the readTrace() grammar and produces
 * identical references and equivalent line-numbered errors.  This is
 * the hot path for trace-sharded campaign jobs (see
 * bench/campaign_throughput.cc for the measured delta).
 */
std::vector<TraceRef> parseTrace(std::string_view text,
                                 std::string *error_out);

/**
 * Parse a trace file from disk; fatal() on I/O or parse errors.
 * Reads the file in a single I/O call and scans it with parseTrace().
 */
std::vector<TraceRef> readTraceFile(const std::string &path);

/** Serialize a trace. */
void writeTrace(std::ostream &out, const std::vector<TraceRef> &refs);

/** Serialize a trace to disk; fatal() on I/O errors. */
void writeTraceFile(const std::string &path,
                    const std::vector<TraceRef> &refs);

/**
 * Split a global trace into one per-processor VectorStream each
 * (processors with no references get an empty single-idle stream of
 * reads to address 0).
 * @param procs total processor count (>= max proc id + 1).
 */
std::vector<std::vector<ProcRef>>
splitTraceByProc(const std::vector<TraceRef> &refs, std::size_t procs);

} // namespace fbsim

#endif // FBSIM_TRACE_TRACE_IO_H_
