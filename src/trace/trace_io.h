/**
 * @file
 * Text trace format: one reference per line,
 *
 *     <proc> <R|W> <hex-address>
 *
 * with '#' comments and blank lines ignored.  Traces interleave
 * processors globally (the order is the bus order in the functional
 * layer).
 */

#ifndef FBSIM_TRACE_TRACE_IO_H_
#define FBSIM_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"
#include "trace/ref_stream.h"

namespace fbsim {

/** One trace record: a reference attributed to a processor. */
struct TraceRef
{
    MasterId proc = 0;
    bool write = false;
    Addr addr = 0;

    bool operator==(const TraceRef &) const = default;
};

/**
 * Parse a trace from a stream.
 * @param in input text.
 * @param error_out set to a description on failure.
 * @return the references, empty (with error_out set) on parse error.
 */
std::vector<TraceRef> readTrace(std::istream &in, std::string *error_out);

/** Parse a trace file from disk; fatal() on I/O or parse errors. */
std::vector<TraceRef> readTraceFile(const std::string &path);

/** Serialize a trace. */
void writeTrace(std::ostream &out, const std::vector<TraceRef> &refs);

/** Serialize a trace to disk; fatal() on I/O errors. */
void writeTraceFile(const std::string &path,
                    const std::vector<TraceRef> &refs);

/**
 * Split a global trace into one per-processor VectorStream each
 * (processors with no references get an empty single-idle stream of
 * reads to address 0).
 * @param procs total processor count (>= max proc id + 1).
 */
std::vector<std::vector<ProcRef>>
splitTraceByProc(const std::vector<TraceRef> &refs, std::size_t procs);

} // namespace fbsim

#endif // FBSIM_TRACE_TRACE_IO_H_
