#include "trace/trace_io.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace fbsim {

namespace {

bool
isBlank(char c)
{
    return c == ' ' || c == '\t' || c == '\r' || c == '\f' ||
           c == '\v';
}

int
hexValue(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

/** Leading decimal digits of `tok` (stoul-style: trailing junk is
 *  ignored); false when there is no digit or the value overflows. */
bool
parseDecimal(std::string_view tok, std::uint64_t *out)
{
    std::size_t i = 0;
    if (i < tok.size() && tok[i] == '+')
        ++i;
    if (i >= tok.size() || tok[i] < '0' || tok[i] > '9')
        return false;
    std::uint64_t value = 0;
    for (; i < tok.size() && tok[i] >= '0' && tok[i] <= '9'; ++i) {
        if (value > (~std::uint64_t{0} - (tok[i] - '0')) / 10)
            return false;
        value = value * 10 + (tok[i] - '0');
    }
    *out = value;
    return true;
}

/** Leading hex digits (optional 0x/0X prefix) of `tok`. */
bool
parseHex(std::string_view tok, std::uint64_t *out)
{
    std::size_t i = 0;
    if (i < tok.size() && tok[i] == '+')
        ++i;
    if (i + 1 < tok.size() && tok[i] == '0' &&
        (tok[i + 1] == 'x' || tok[i + 1] == 'X') &&
        hexValue(i + 2 < tok.size() ? tok[i + 2] : '\0') >= 0)
        i += 2;
    if (i >= tok.size() || hexValue(tok[i]) < 0)
        return false;
    std::uint64_t value = 0;
    for (; i < tok.size(); ++i) {
        int digit = hexValue(tok[i]);
        if (digit < 0)
            break;
        if (value >> 60)
            return false;   // would overflow the shift
        value = (value << 4) | static_cast<std::uint64_t>(digit);
    }
    *out = value;
    return true;
}

} // namespace

std::vector<TraceRef>
readTrace(std::istream &in, std::string *error_out)
{
    std::vector<TraceRef> refs;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::string proc_tok, op_tok, addr_tok;
        if (!(ls >> proc_tok))
            continue;   // blank / comment-only line
        if (!(ls >> op_tok >> addr_tok)) {
            if (error_out) {
                *error_out = strprintf("line %zu: expected "
                                       "'<proc> <R|W> <hexaddr>'",
                                       lineno);
            }
            return {};
        }
        TraceRef ref;
        try {
            ref.proc = static_cast<MasterId>(std::stoul(proc_tok));
            ref.addr = std::stoull(addr_tok, nullptr, 16);
        } catch (const std::exception &) {
            if (error_out)
                *error_out = strprintf("line %zu: bad number", lineno);
            return {};
        }
        if (op_tok == "R" || op_tok == "r") {
            ref.write = false;
        } else if (op_tok == "W" || op_tok == "w") {
            ref.write = true;
        } else {
            if (error_out) {
                *error_out = strprintf("line %zu: op must be R or W",
                                       lineno);
            }
            return {};
        }
        refs.push_back(ref);
    }
    if (error_out)
        error_out->clear();
    return refs;
}

std::vector<TraceRef>
parseTrace(std::string_view text, std::string *error_out)
{
    std::vector<TraceRef> refs;
    refs.reserve(text.size() / 8);   // "p R hexaddr\n" lower bound
    const char *p = text.data();
    const char *const end = p + text.size();
    std::size_t lineno = 0;

    auto fail = [&](const char *what) {
        if (error_out)
            *error_out = strprintf("line %zu: %s", lineno, what);
        return std::vector<TraceRef>{};
    };

    while (p < end) {
        ++lineno;
        const char *eol = static_cast<const char *>(
            std::memchr(p, '\n', static_cast<std::size_t>(end - p)));
        const char *line_end = eol ? eol : end;
        // Comments run to end of line.
        if (const char *hash = static_cast<const char *>(std::memchr(
                p, '#', static_cast<std::size_t>(line_end - p))))
            line_end = hash;

        // Whitespace-delimited tokens, in place.
        std::string_view tok[3];
        int ntok = 0;
        const char *q = p;
        while (q < line_end && ntok < 3) {
            while (q < line_end && isBlank(*q))
                ++q;
            if (q == line_end)
                break;
            const char *start = q;
            while (q < line_end && !isBlank(*q))
                ++q;
            tok[ntok++] = std::string_view(
                start, static_cast<std::size_t>(q - start));
        }
        p = eol ? eol + 1 : end;

        if (ntok == 0)
            continue;   // blank / comment-only line
        if (ntok < 3)
            return fail("expected '<proc> <R|W> <hexaddr>'");

        std::uint64_t proc = 0, addr = 0;
        if (!parseDecimal(tok[0], &proc) || !parseHex(tok[2], &addr))
            return fail("bad number");
        TraceRef ref;
        ref.proc = static_cast<MasterId>(proc);
        ref.addr = addr;
        if (tok[1] == "R" || tok[1] == "r")
            ref.write = false;
        else if (tok[1] == "W" || tok[1] == "w")
            ref.write = true;
        else
            return fail("op must be R or W");
        refs.push_back(ref);
    }
    if (error_out)
        error_out->clear();
    return refs;
}

std::vector<TraceRef>
readTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fbsim_fatal("cannot open trace file %s", path.c_str());
    in.seekg(0, std::ios::end);
    std::streamoff size = in.tellg();
    std::string err;
    std::vector<TraceRef> refs;
    if (size < 0) {
        // Not seekable - fall back to the stream parser.
        in.seekg(0);
        refs = readTrace(in, &err);
    } else {
        std::string text(static_cast<std::size_t>(size), '\0');
        in.seekg(0);
        in.read(text.data(), size);
        if (!in)
            fbsim_fatal("cannot read trace file %s", path.c_str());
        refs = parseTrace(text, &err);
    }
    if (!err.empty())
        fbsim_fatal("%s: %s", path.c_str(), err.c_str());
    return refs;
}

void
writeTrace(std::ostream &out, const std::vector<TraceRef> &refs)
{
    out << "# fbsim trace: <proc> <R|W> <hex-address>\n";
    for (const TraceRef &r : refs) {
        out << r.proc << ' ' << (r.write ? 'W' : 'R') << ' ' << std::hex
            << r.addr << std::dec << '\n';
    }
}

void
writeTraceFile(const std::string &path, const std::vector<TraceRef> &refs)
{
    std::ofstream out(path);
    if (!out)
        fbsim_fatal("cannot write trace file %s", path.c_str());
    writeTrace(out, refs);
}

std::vector<std::vector<ProcRef>>
splitTraceByProc(const std::vector<TraceRef> &refs, std::size_t procs)
{
    std::vector<std::vector<ProcRef>> out(procs);
    for (const TraceRef &r : refs) {
        fbsim_assert(r.proc < procs);
        out[r.proc].push_back({r.write, r.addr});
    }
    for (auto &v : out) {
        if (v.empty())
            v.push_back({false, 0});
    }
    return out;
}

} // namespace fbsim
