#include "trace/trace_io.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace fbsim {

std::vector<TraceRef>
readTrace(std::istream &in, std::string *error_out)
{
    std::vector<TraceRef> refs;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::string proc_tok, op_tok, addr_tok;
        if (!(ls >> proc_tok))
            continue;   // blank / comment-only line
        if (!(ls >> op_tok >> addr_tok)) {
            if (error_out) {
                *error_out = strprintf("line %zu: expected "
                                       "'<proc> <R|W> <hexaddr>'",
                                       lineno);
            }
            return {};
        }
        TraceRef ref;
        try {
            ref.proc = static_cast<MasterId>(std::stoul(proc_tok));
            ref.addr = std::stoull(addr_tok, nullptr, 16);
        } catch (const std::exception &) {
            if (error_out)
                *error_out = strprintf("line %zu: bad number", lineno);
            return {};
        }
        if (op_tok == "R" || op_tok == "r") {
            ref.write = false;
        } else if (op_tok == "W" || op_tok == "w") {
            ref.write = true;
        } else {
            if (error_out) {
                *error_out = strprintf("line %zu: op must be R or W",
                                       lineno);
            }
            return {};
        }
        refs.push_back(ref);
    }
    if (error_out)
        error_out->clear();
    return refs;
}

std::vector<TraceRef>
readTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fbsim_fatal("cannot open trace file %s", path.c_str());
    std::string err;
    std::vector<TraceRef> refs = readTrace(in, &err);
    if (!err.empty())
        fbsim_fatal("%s: %s", path.c_str(), err.c_str());
    return refs;
}

void
writeTrace(std::ostream &out, const std::vector<TraceRef> &refs)
{
    out << "# fbsim trace: <proc> <R|W> <hex-address>\n";
    for (const TraceRef &r : refs) {
        out << r.proc << ' ' << (r.write ? 'W' : 'R') << ' ' << std::hex
            << r.addr << std::dec << '\n';
    }
}

void
writeTraceFile(const std::string &path, const std::vector<TraceRef> &refs)
{
    std::ofstream out(path);
    if (!out)
        fbsim_fatal("cannot write trace file %s", path.c_str());
    writeTrace(out, refs);
}

std::vector<std::vector<ProcRef>>
splitTraceByProc(const std::vector<TraceRef> &refs, std::size_t procs)
{
    std::vector<std::vector<ProcRef>> out(procs);
    for (const TraceRef &r : refs) {
        fbsim_assert(r.proc < procs);
        out[r.proc].push_back({r.write, r.addr});
    }
    for (auto &v : out) {
        if (v.empty())
            v.push_back({false, 0});
    }
    return out;
}

} // namespace fbsim
