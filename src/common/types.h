/**
 * @file
 * Fundamental scalar types shared by every fbsim module.
 *
 * The simulator models a shared-backplane multiprocessor in the style of
 * the IEEE Futurebus (P896).  Addresses are byte addresses in a single
 * flat shared address space; caches operate on aligned lines of a
 * system-wide constant size (the paper's section 5.1 argues a standard
 * line size is mandatory, and fbsim enforces one per System).
 */

#ifndef FBSIM_COMMON_TYPES_H_
#define FBSIM_COMMON_TYPES_H_

#include <cstdint>
#include <cstddef>

namespace fbsim {

/** Byte address in the shared system address space. */
using Addr = std::uint64_t;

/** Line-granular address: byte address divided by the line size. */
using LineAddr = std::uint64_t;

/** Word value stored in memory/caches; fbsim words are 64-bit. */
using Word = std::uint64_t;

/** Index of a bus module (cache master, non-caching master). */
using MasterId = std::uint32_t;

/** Simulated time, in bus clock cycles. */
using Cycles = std::uint64_t;

/** Number of bytes per simulated word. */
inline constexpr std::size_t kWordBytes = 8;

/** Sentinel master id meaning "no master" / "main memory". */
inline constexpr MasterId kNoMaster = 0xffffffffu;

} // namespace fbsim

#endif // FBSIM_COMMON_TYPES_H_
