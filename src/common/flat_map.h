/**
 * @file
 * A minimal open-addressing hash map for 64-bit integer keys.
 *
 * The simulator's hottest lookups (the checker's value oracle, the
 * bus's snoop-filter presence mask) are word- or line-address keyed
 * maps probed on every access.  libstdc++'s std::unordered_map costs
 * a modulo-by-prime plus a node indirection per probe; this map uses
 * a power-of-two table with a multiplicative hash and linear probing,
 * so the common hit is one multiply, one shift and one cache line.
 *
 * Empty slots are marked with a reserved key (~0) rather than a flag
 * byte, which keeps a <uint64, uint64> slot at 16 bytes - four slots
 * per cache line instead of two.  Address-derived keys (word indices,
 * line numbers) can never reach 2^64 - 1, and inserts assert it.
 *
 * Deliberately tiny API: find / insert-or-assign / erase / iterate.
 * Values must be trivially movable; erase uses backward-shift
 * deletion, so no tombstones accumulate.  Not a general container -
 * pointers returned by find() are invalidated by any mutation.
 */

#ifndef FBSIM_COMMON_FLAT_MAP_H_
#define FBSIM_COMMON_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace fbsim {

/** Open-addressing map from std::uint64_t to V.  The key ~0 is
 *  reserved as the empty marker and must never be inserted. */
template <typename V>
class FlatMap64
{
  public:
    FlatMap64() { rehash(kMinSlots); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void clear()
    {
        slots_.clear();
        size_ = 0;
        rehash(kMinSlots);
    }

    /** Pointer to the mapped value, or nullptr if absent.  Invalidated
     *  by any mutating call. */
    V *find(std::uint64_t key)
    {
        std::size_t i = indexOf(key);
        while (slots_[i].key != kEmpty) {
            if (slots_[i].key == key)
                return &slots_[i].value;
            i = (i + 1) & mask_;
        }
        return nullptr;
    }

    const V *find(std::uint64_t key) const
    {
        return const_cast<FlatMap64 *>(this)->find(key);
    }

    /** Value for key, default-constructing it if absent. */
    V &operator[](std::uint64_t key)
    {
        fbsim_assert(key != kEmpty);
        std::size_t i = indexOf(key);
        while (slots_[i].key != kEmpty) {
            if (slots_[i].key == key)
                return slots_[i].value;
            i = (i + 1) & mask_;
        }
        if (size_ + 1 > (slots_.size() / 4) * 3) {
            rehash(slots_.size() * 2);
            i = indexOf(key);
            while (slots_[i].key != kEmpty)
                i = (i + 1) & mask_;
        }
        slots_[i].key = key;
        slots_[i].value = V{};
        ++size_;
        return slots_[i].value;
    }

    /** Remove key if present; returns whether it was. */
    bool erase(std::uint64_t key)
    {
        std::size_t i = indexOf(key);
        while (slots_[i].key != kEmpty) {
            if (slots_[i].key == key) {
                // Backward-shift deletion keeps probe chains intact
                // without tombstones.
                std::size_t hole = i;
                std::size_t j = (i + 1) & mask_;
                while (slots_[j].key != kEmpty) {
                    std::size_t home = indexOf(slots_[j].key);
                    // Move j into the hole unless j sits between its
                    // home and the hole (cyclically), i.e. moving it
                    // would break its own probe chain.
                    bool movable = ((j - home) & mask_) >=
                                   ((j - hole) & mask_);
                    if (movable) {
                        slots_[hole] = std::move(slots_[j]);
                        hole = j;
                    }
                    j = (j + 1) & mask_;
                }
                slots_[hole].key = kEmpty;
                slots_[hole].value = V{};
                --size_;
                return true;
            }
            i = (i + 1) & mask_;
        }
        return false;
    }

    /**
     * Grow the table so that `expected` entries fit without further
     * rehashing (load kept under 3/4).  Contents and lookups are
     * unaffected; forEach order is unspecified either way.
     */
    void reserve(std::size_t expected)
    {
        std::size_t want = kMinSlots;
        while (expected + 1 > (want / 4) * 3)
            want *= 2;
        if (want > slots_.size())
            rehash(want);
    }

    /** Visit every (key, value) pair in unspecified order. */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        for (const Slot &s : slots_) {
            if (s.key != kEmpty)
                fn(s.key, s.value);
        }
    }

  private:
    static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

    struct Slot
    {
        std::uint64_t key = kEmpty;
        V value{};
    };

    static constexpr std::size_t kMinSlots = 16;

    std::size_t indexOf(std::uint64_t key) const
    {
        // Fibonacci hashing: sequential line/word addresses spread
        // over the top bits, which the mask then selects.
        return static_cast<std::size_t>(
                   (key * 0x9e3779b97f4a7c15ull) >> shift_) &
               mask_;
    }

    void rehash(std::size_t new_slots)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(new_slots, Slot{});
        mask_ = new_slots - 1;
        shift_ = 64;
        for (std::size_t n = new_slots; n > 1; n >>= 1)
            --shift_;
        for (Slot &s : old) {
            if (s.key == kEmpty)
                continue;
            std::size_t i = indexOf(s.key);
            while (slots_[i].key != kEmpty)
                i = (i + 1) & mask_;
            slots_[i] = std::move(s);
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
    std::size_t mask_ = 0;
    unsigned shift_ = 64;
};

} // namespace fbsim

#endif // FBSIM_COMMON_FLAT_MAP_H_
