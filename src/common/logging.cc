#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace fbsim {

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, ap2);
        out.resize(static_cast<std::size_t>(needed));
    }
    va_end(ap2);
    return out;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vstrprintf(fmt, ap);
    va_end(ap);
    return out;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

namespace {

// Per-site (file:line) emission bookkeeping for fbsim_warn.  Guarded
// by a mutex because campaign workers warn concurrently; an ordered
// map keeps the suppression summary deterministic.
struct WarnLimiter
{
    std::mutex mu;
    unsigned limit = 0;   // 0 = unlimited
    WarnStats stats;
    std::map<std::pair<std::string, int>, std::uint64_t> perSite;
};

WarnLimiter &
warnLimiter()
{
    static WarnLimiter limiter;
    return limiter;
}

} // namespace

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    {
        WarnLimiter &wl = warnLimiter();
        std::lock_guard<std::mutex> lock(wl.mu);
        ++wl.stats.emitted;
    }
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
warnAtImpl(const char *file, int line, const char *fmt, ...)
{
    bool print = true;
    {
        WarnLimiter &wl = warnLimiter();
        std::lock_guard<std::mutex> lock(wl.mu);
        std::uint64_t &count = wl.perSite[{file, line}];
        ++count;
        if (wl.limit != 0 && count > wl.limit) {
            ++wl.stats.suppressed;
            print = false;
        } else {
            ++wl.stats.emitted;
        }
    }
    if (!print)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
setWarnSiteLimit(unsigned limit)
{
    WarnLimiter &wl = warnLimiter();
    std::lock_guard<std::mutex> lock(wl.mu);
    wl.limit = limit;
}

unsigned
warnSiteLimit()
{
    WarnLimiter &wl = warnLimiter();
    std::lock_guard<std::mutex> lock(wl.mu);
    return wl.limit;
}

WarnStats
warnStats()
{
    WarnLimiter &wl = warnLimiter();
    std::lock_guard<std::mutex> lock(wl.mu);
    return wl.stats;
}

void
resetWarnStats()
{
    WarnLimiter &wl = warnLimiter();
    std::lock_guard<std::mutex> lock(wl.mu);
    wl.stats = WarnStats();
    wl.perSite.clear();
}

std::string
warnSuppressionSummary()
{
    WarnLimiter &wl = warnLimiter();
    std::lock_guard<std::mutex> lock(wl.mu);
    std::string out;
    if (wl.limit == 0)
        return out;
    for (const auto &[site, count] : wl.perSite) {
        if (count > wl.limit) {
            out += strprintf("warn: suppressed %llu similar messages "
                             "from %s:%d\n",
                             static_cast<unsigned long long>(count -
                                                             wl.limit),
                             site.first.c_str(), site.second);
        }
    }
    return out;
}

void
informImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace fbsim
