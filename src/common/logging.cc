#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace fbsim {

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, ap2);
        out.resize(static_cast<std::size_t>(needed));
    }
    va_end(ap2);
    return out;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vstrprintf(fmt, ap);
    va_end(ap);
    return out;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace fbsim
