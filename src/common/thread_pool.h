/**
 * @file
 * Fixed-size worker thread pool for run-level parallelism.
 *
 * fbsim's simulations are single-threaded by design (a System is a
 * shared-nothing object); the pool exists to run *many independent*
 * simulations concurrently - protocol sweeps, fault campaigns,
 * sensitivity studies.  Tasks are plain callables; the pool makes no
 * ordering promises, so anything needing deterministic output must
 * sequence its own results (see campaign/campaign_runner.h, which
 * merges by job index).
 */

#ifndef FBSIM_COMMON_THREAD_POOL_H_
#define FBSIM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fbsim {

/** A fixed set of worker threads draining one task queue. */
class ThreadPool
{
  public:
    /** Spawn `threads` workers (at least 1). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task; runs on some worker, in no particular order. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /**
     * Exceptions that escaped tasks, in completion order; draining
     * clears the store.  A throwing task poisons nothing: its worker
     * captures the exception and keeps draining the queue, so the
     * pool stays usable and no std::terminate fires.  The submitter
     * decides what an escaped exception means - the campaign
     * supervisor, for instance, turns one into a failed-job row.
     */
    std::vector<std::exception_ptr> drainExceptions();

    std::size_t numThreads() const { return workers_.size(); }

    /** Hardware thread count (>= 1) - the natural --jobs default. */
    static unsigned hardwareJobs();

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable allIdle_;
    std::deque<std::function<void()>> tasks_;
    std::vector<std::exception_ptr> exceptions_;
    std::vector<std::thread> workers_;
    std::size_t running_ = 0;   ///< tasks currently executing
    bool shutdown_ = false;
};

} // namespace fbsim

#endif // FBSIM_COMMON_THREAD_POOL_H_
