/**
 * @file
 * Bounded multi-producer single-consumer queue.
 *
 * The campaign runner's result channel: worker threads push finished
 * job results, the merging thread pops them.  The bound applies
 * backpressure so a slow consumer (or one enormous result) cannot make
 * the queue hold the whole campaign in memory at once.  A short
 * critical section around a ring of preallocated slots is
 * "lock-free-enough" here: pushes happen once per *simulation*, many
 * milliseconds apart, so contention is unmeasurable.
 */

#ifndef FBSIM_COMMON_BOUNDED_QUEUE_H_
#define FBSIM_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace fbsim {

/** Blocking FIFO with a fixed capacity. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity)
        : slots_(capacity == 0 ? 1 : capacity)
    {
    }

    /** Block until a slot is free, then enqueue. */
    void
    push(T value)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            notFull_.wait(lock,
                          [this] { return size_ < slots_.size(); });
            slots_[(head_ + size_) % slots_.size()] = std::move(value);
            ++size_;
        }
        notEmpty_.notify_one();
    }

    /** Block until a value is available, then dequeue it. */
    T
    pop()
    {
        T value;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            notEmpty_.wait(lock, [this] { return size_ > 0; });
            value = std::move(slots_[head_]);
            head_ = (head_ + 1) % slots_.size();
            --size_;
        }
        notFull_.notify_one();
        return value;
    }

    std::size_t capacity() const { return slots_.size(); }

  private:
    std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace fbsim

#endif // FBSIM_COMMON_BOUNDED_QUEUE_H_
