#include "common/thread_pool.h"

namespace fbsim {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    taskReady_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(task));
    }
    taskReady_.notify_one();
}

std::vector<std::exception_ptr>
ThreadPool::drainExceptions()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::exception_ptr> out;
    out.swap(exceptions_);
    return out;
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allIdle_.wait(lock,
                  [this] { return tasks_.empty() && running_ == 0; });
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        taskReady_.wait(
            lock, [this] { return shutdown_ || !tasks_.empty(); });
        if (tasks_.empty()) {
            if (shutdown_)
                return;
            continue;
        }
        std::function<void()> task = std::move(tasks_.front());
        tasks_.pop_front();
        ++running_;
        lock.unlock();
        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        lock.lock();
        if (error)
            exceptions_.push_back(std::move(error));
        --running_;
        if (tasks_.empty() && running_ == 0)
            allIdle_.notify_all();
    }
}

unsigned
ThreadPool::hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

} // namespace fbsim
