/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal simulator invariant was violated (a bug in
 *            fbsim itself).  Aborts, so a debugger/core dump is useful.
 * fatal()  - the simulation cannot continue because of a user-supplied
 *            condition (bad configuration, malformed trace, ...).  Exits
 *            with status 1.
 * warn()   - something suspicious but survivable.
 * inform() - status messages.
 *
 * All take printf-style format strings.
 */

#ifndef FBSIM_COMMON_LOGGING_H_
#define FBSIM_COMMON_LOGGING_H_

#include <cstdarg>
#include <string>

namespace fbsim {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Format a printf-style message into a std::string. */
std::string vstrprintf(const char *fmt, va_list ap);

/** Format a printf-style message into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

#define fbsim_panic(...) ::fbsim::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fbsim_fatal(...) ::fbsim::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Assert a simulator invariant; on failure panic with the condition. */
#define fbsim_assert(cond, ...)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::fbsim::panicImpl(__FILE__, __LINE__,                           \
                               "assertion failed: %s", #cond);               \
        }                                                                    \
    } while (0)

} // namespace fbsim

#endif // FBSIM_COMMON_LOGGING_H_
