/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal simulator invariant was violated (a bug in
 *            fbsim itself).  Aborts, so a debugger/core dump is useful.
 * fatal()  - the simulation cannot continue because of a user-supplied
 *            condition (bad configuration, malformed trace, ...).  Exits
 *            with status 1.
 * warn()   - something suspicious but survivable.
 * inform() - status messages.
 *
 * All take printf-style format strings.
 */

#ifndef FBSIM_COMMON_LOGGING_H_
#define FBSIM_COMMON_LOGGING_H_

#include <cstdarg>
#include <cstdint>
#include <string>

namespace fbsim {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Rate-limited warning keyed by emitting site (file:line).  Once a
 * site has emitted warnSiteLimit() messages, further ones from the
 * same site are counted but not printed; warnSuppressionSummary()
 * reports "suppressed N similar messages" per muted site.  A limit of
 * 0 (the default) disables suppression, preserving the historical
 * behavior tests depend on.
 */
void warnAtImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Process-wide warning counters (all sites, emitted vs suppressed). */
struct WarnStats
{
    std::uint64_t emitted = 0;
    std::uint64_t suppressed = 0;
};

/** Set the per-site emission cap for fbsim_warn (0 = unlimited). */
void setWarnSiteLimit(unsigned limit);

/** Current per-site emission cap (0 = unlimited). */
unsigned warnSiteLimit();

/** Snapshot of the process-wide warning counters. */
WarnStats warnStats();

/** Reset counters and per-site histories (tests, campaign starts). */
void resetWarnStats();

/**
 * One line per muted site: "warn: suppressed N similar messages from
 * <file>:<line>\n", concatenated; empty when nothing was suppressed.
 */
std::string warnSuppressionSummary();

/** Format a printf-style message into a std::string. */
std::string vstrprintf(const char *fmt, va_list ap);

/** Format a printf-style message into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

#define fbsim_panic(...) ::fbsim::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fbsim_fatal(...) ::fbsim::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fbsim_warn(...) ::fbsim::warnAtImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Assert a simulator invariant; on failure panic with the condition. */
#define fbsim_assert(cond, ...)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::fbsim::panicImpl(__FILE__, __LINE__,                           \
                               "assertion failed: %s", #cond);               \
        }                                                                    \
    } while (0)

} // namespace fbsim

#endif // FBSIM_COMMON_LOGGING_H_
