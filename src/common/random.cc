#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace fbsim {

namespace {

/** SplitMix64 step, used to expand the seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    fbsim_assert(bound != 0);
    // Debiased modulo via rejection on the tail.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    fbsim_assert(lo <= hi);
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    fbsim_assert(p > 0.0 && p <= 1.0);
    if (p >= 1.0)
        return 0;
    double u = uniform();
    // Inverse transform; u in [0,1) keeps log argument positive.
    double k = std::floor(std::log1p(-u) / std::log1p(-p));
    return k < 0 ? 0 : static_cast<std::uint64_t>(k);
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

} // namespace fbsim
