#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace fbsim {

namespace {

/** SplitMix64 step, used to expand the seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

void
Rng::geometricRetune(double p)
{
    fbsim_assert(p > 0.0 && p <= 1.0);
    geomP_ = p;
    if (p >= 1.0)
        return;
    geomLogDenom_ = std::log1p(-p);
    // cdf[k] = P(K <= k) = 1 - (1-p)^(k+1), stored as the smallest
    // 53-bit draw NOT accepted at k (see geometric()).
    double q = 1.0 - p;
    double qk = 1.0;
    for (std::size_t k = 0; k < kGeomTable; ++k) {
        qk *= q;
        geomThresh_[k] = static_cast<std::uint64_t>(
            std::ceil((1.0 - qk) * 0x1.0p53));
    }
}

std::uint64_t
Rng::geometricTail(double u)
{
    // Inverse transform; u in [0,1) keeps the log argument positive.
    double k = std::floor(std::log1p(-u) / geomLogDenom_);
    double floor_table = static_cast<double>(kGeomTable);
    if (k < floor_table)
        k = floor_table;
    return static_cast<std::uint64_t>(k);
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

} // namespace fbsim
