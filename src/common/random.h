/**
 * @file
 * Deterministic pseudo-random generation for fbsim.
 *
 * All stochastic behaviour in the simulator (synthetic workloads, random
 * replacement, the section 3.4 "random action selection" cache) flows from
 * explicitly seeded Rng instances so that runs are reproducible across
 * platforms and standard library versions.  The generator is
 * xoshiro256**, seeded via SplitMix64.
 */

#ifndef FBSIM_COMMON_RANDOM_H_
#define FBSIM_COMMON_RANDOM_H_

#include <cstdint>
#include <cstddef>

namespace fbsim {

/**
 * xoshiro256** pseudo-random number generator.
 *
 * Satisfies the essentials of UniformRandomBitGenerator, but fbsim code
 * uses the convenience members below rather than <random> distributions
 * (whose outputs are implementation-defined).
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; any value (including 0) is fine. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit value. */
    result_type operator()() { return next(); }

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial: true with probability p (clamped to [0,1]). */
    bool chance(double p);

    /**
     * Geometric re-reference distance: returns k >= 0 with
     * P(k) = p * (1-p)^k; used for temporal locality in workloads.
     */
    std::uint64_t geometric(double p);

    /** Fork an independent stream (e.g., one per processor). */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace fbsim

#endif // FBSIM_COMMON_RANDOM_H_
