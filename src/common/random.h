/**
 * @file
 * Deterministic pseudo-random generation for fbsim.
 *
 * All stochastic behaviour in the simulator (synthetic workloads, random
 * replacement, the section 3.4 "random action selection" cache) flows from
 * explicitly seeded Rng instances so that runs are reproducible across
 * platforms and standard library versions.  The generator is
 * xoshiro256**, seeded via SplitMix64.
 *
 * The draw members are defined inline: workload generation sits on the
 * simulator's hot path and the call overhead of an out-of-line next()
 * per reference is measurable.
 */

#ifndef FBSIM_COMMON_RANDOM_H_
#define FBSIM_COMMON_RANDOM_H_

#include <array>
#include <cstdint>
#include <cstddef>

#include "common/logging.h"

namespace fbsim {

/**
 * xoshiro256** pseudo-random number generator.
 *
 * Satisfies the essentials of UniformRandomBitGenerator, but fbsim code
 * uses the convenience members below rather than <random> distributions
 * (whose outputs are implementation-defined).
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; any value (including 0) is fine. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit value. */
    result_type operator()() { return next(); }

    /** Next raw 64-bit value. */
    std::uint64_t next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t below(std::uint64_t bound)
    {
        fbsim_assert(bound != 0);
        // Debiased multiply-shift (Lemire 2019): the common case is
        // one 128-bit multiply, no division; the rejection threshold
        // is only computed when the low half lands in the biased zone
        // (probability bound / 2^64).
        unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                m = static_cast<unsigned __int128>(next()) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial: true with probability p (clamped to [0,1]). */
    bool chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        // Integer threshold compare; for p in (0,1) the product is
        // below 2^64 (the largest double < 1 maps to 2^64 - 2^11), so
        // the cast is well defined.
        return next() < static_cast<std::uint64_t>(p * 0x1.0p64);
    }

    /**
     * Geometric re-reference distance: returns k >= 0 with
     * P(k) = p * (1-p)^k; used for temporal locality in workloads.
     */
    std::uint64_t geometric(double p)
    {
        if (p != geomP_)
            geometricRetune(p);
        if (p >= 1.0)
            return 0;
        // r/2^53 is the uniform draw; r < ceil(cdf * 2^53) is exactly
        // u < cdf for integer r, so the walk never touches a double.
        const std::uint64_t r = next() >> 11;
        for (std::size_t k = 0; k < kGeomTable; ++k) {
            if (r < geomThresh_[k])
                return k;
        }
        return geometricTail(static_cast<double>(r) * 0x1.0p-53);
    }

    /** Fork an independent stream (e.g., one per processor). */
    Rng fork();

    /**
     * Derive a stream seed from a base seed and a stream index (a
     * SplitMix64 finalizer over their combination).  This is the
     * campaign layer's seeding discipline: job i of a campaign uses
     * deriveSeed(campaignSeed, i), so every job's randomness is a
     * pure function of (campaignSeed, jobIndex) - independent of
     * worker count and schedule - and no two jobs share a stream.
     */
    static std::uint64_t
    deriveSeed(std::uint64_t seed, std::uint64_t stream)
    {
        std::uint64_t x =
            seed + 0x9e3779b97f4a7c15ull * (stream + 0x632be59bd9b4e019ull);
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    /**
     * Two-level derivation for retried campaign jobs:
     * deriveSeed(campaignSeed, jobIndex, attempt).  Attempt 0 is the
     * canonical job seed (identical to the two-argument form), so a
     * never-retried campaign is bit-for-bit the unsupervised run;
     * attempt k > 0 re-finalizes, giving each retry a fresh stream
     * that is still a pure function of (seed, job, attempt).
     */
    static std::uint64_t
    deriveSeed(std::uint64_t seed, std::uint64_t stream,
               std::uint64_t substream)
    {
        std::uint64_t x = deriveSeed(seed, stream);
        return substream == 0 ? x : deriveSeed(x, substream);
    }

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    void geometricRetune(double p);
    std::uint64_t geometricTail(double u);

    std::uint64_t s_[4];
    // geometric() inverts the CDF by walking a memoized threshold
    // table (thresh[k] = ceil((1 - (1-p)^(k+1)) * 2^53)): one raw
    // draw per call and no per-draw transcendental.  Draws landing
    // beyond the table fall back to the log-based inversion.
    static constexpr std::size_t kGeomTable = 32;
    double geomP_ = -1.0;
    double geomLogDenom_ = 0.0;
    std::array<std::uint64_t, kGeomTable> geomThresh_{};
};

} // namespace fbsim

#endif // FBSIM_COMMON_RANDOM_H_
