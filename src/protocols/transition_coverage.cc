#include "protocols/transition_coverage.h"

#include "common/logging.h"

namespace fbsim {

namespace {

std::pair<int, int>
keyOf(State from, int ev)
{
    return {static_cast<int>(from), ev};
}

} // namespace

void
TransitionCoverage::noteLocal(State from, LocalEvent ev, State)
{
    ++local_[keyOf(from, static_cast<int>(ev))];
}

void
TransitionCoverage::noteSnoop(State from, BusEvent ev, State)
{
    ++snoop_[keyOf(from, static_cast<int>(ev))];
}

std::uint64_t
TransitionCoverage::localCount(State from, LocalEvent ev) const
{
    auto it = local_.find(keyOf(from, static_cast<int>(ev)));
    return it == local_.end() ? 0 : it->second;
}

std::uint64_t
TransitionCoverage::snoopCount(State from, BusEvent ev) const
{
    auto it = snoop_.find(keyOf(from, static_cast<int>(ev)));
    return it == snoop_.end() ? 0 : it->second;
}

std::vector<std::string>
TransitionCoverage::uncoveredCells(const ProtocolTable &table,
                                   bool include_snoop_invalid) const
{
    std::vector<std::string> out;
    for (State s : table.states()) {
        for (LocalEvent ev : kAllLocalEvents) {
            if (table.local(s, ev).empty())
                continue;
            if (localCount(s, ev) == 0) {
                out.push_back(strprintf(
                    "%s: local[%s,%s] never executed",
                    table.name().c_str(),
                    std::string(stateName(s)).c_str(),
                    std::string(localEventName(ev)).c_str()));
            }
        }
        if (s == State::I && !include_snoop_invalid)
            continue;
        for (BusEvent ev : kAllBusEvents) {
            if (table.snoop(s, ev).empty())
                continue;
            if (snoopCount(s, ev) == 0) {
                out.push_back(strprintf(
                    "%s: snoop[%s,col%d] never executed",
                    table.name().c_str(),
                    std::string(stateName(s)).c_str(),
                    busEventColumn(ev)));
            }
        }
    }
    return out;
}

void
TransitionCoverage::merge(const TransitionCoverage &other)
{
    for (const auto &[key, count] : other.local_)
        local_[key] += count;
    for (const auto &[key, count] : other.snoop_)
        snoop_[key] += count;
}

} // namespace fbsim
