/**
 * @file
 * Common interface of everything that issues processor accesses onto
 * the shared memory image: snooping caches, write-through caches and
 * non-caching masters.
 */

#ifndef FBSIM_PROTOCOLS_BUS_CLIENT_H_
#define FBSIM_PROTOCOLS_BUS_CLIENT_H_

#include "common/types.h"
#include "core/events.h"

namespace fbsim {

/** Cost/traffic outcome of one processor access. */
struct AccessOutcome
{
    Word value = 0;          ///< data returned (reads)
    bool usedBus = false;
    unsigned busTransactions = 0;
    Cycles busCycles = 0;    ///< bus occupancy charged to this access
    /**
     * The access did not complete: a bus transaction it needed gave up
     * after exhausting its abort retries (possible only under fault
     * injection).  A faulted read returns no meaningful value; a
     * faulted write did not reach the shared image.  The system layer
     * counts consecutive faulted accesses per master and trips the
     * livelock watchdog.
     */
    bool faulted = false;

    /**
     * Accumulate another access's traffic into this one (multi-word
     * transfers, sync sequences).  `value` is left alone: which word a
     * compound access "returns" is the caller's decision.
     */
    AccessOutcome &operator+=(const AccessOutcome &other)
    {
        usedBus = usedBus || other.usedBus;
        busTransactions += other.busTransactions;
        busCycles += other.busCycles;
        faulted = faulted || other.faulted;
        return *this;
    }
};

/** A processor-side port into the shared memory image. */
class BusClient
{
  public:
    virtual ~BusClient() = default;

    /** Bus module id. */
    virtual MasterId clientId() const = 0;

    /** Human-readable protocol name ("MOESI", "write-through", ...). */
    virtual const char *protocolName() const = 0;

    /** Processor load of the word at `addr` (word-aligned). */
    virtual AccessOutcome read(Addr addr) = 0;

    /** Processor store of `value` to the word at `addr`. */
    virtual AccessOutcome write(Addr addr, Word value) = 0;

    /**
     * Push a dirty line (if held): the paper's local events 3 and 4.
     * @param keep_copy true = Pass (event 3), false = Flush (event 4).
     * No-op for clients without a copy-back line (returns zero cost).
     */
    virtual AccessOutcome flush(Addr addr, bool keep_copy) = 0;
};

} // namespace fbsim

#endif // FBSIM_PROTOCOLS_BUS_CLIENT_H_
