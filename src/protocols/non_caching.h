/**
 * @file
 * A non-caching bus master (e.g. an I/O processor) - the "**" rows of
 * Table 1.  It reads without asserting CA, writes with IM (optionally
 * broadcast), and never responds to bus events.
 */

#ifndef FBSIM_PROTOCOLS_NON_CACHING_H_
#define FBSIM_PROTOCOLS_NON_CACHING_H_

#include "bus/bus.h"
#include "protocols/bus_client.h"
#include "protocols/cache_stats.h"

namespace fbsim {

/** A cache-less master: every access is a bus transaction. */
class NonCachingMaster : public BusClient
{
  public:
    /**
     * @param id bus module id.
     * @param bus the shared bus.
     * @param line_bytes system line size (for word addressing).
     * @param broadcast_writes assert BC on writes (column 10 vs 9).
     */
    NonCachingMaster(MasterId id, Bus &bus, std::size_t line_bytes,
                     bool broadcast_writes);

    MasterId clientId() const override { return id_; }
    const char *protocolName() const override { return "non-caching"; }

    AccessOutcome read(Addr addr) override;
    AccessOutcome write(Addr addr, Word value) override;
    AccessOutcome flush(Addr, bool) override { return {}; }

    CacheStats &stats() { return stats_; }
    const CacheStats &stats() const { return stats_; }

  private:
    MasterId id_;
    Bus &bus_;
    std::size_t lineBytes_;
    bool broadcastWrites_;
    CacheStats stats_;
};

} // namespace fbsim

#endif // FBSIM_PROTOCOLS_NON_CACHING_H_
