#include "protocols/snooping_cache.h"

#include "common/logging.h"

namespace fbsim {

SnoopingCache::SnoopingCache(MasterId id, Bus &bus,
                             const ProtocolTable &table,
                             std::unique_ptr<ActionChooser> chooser,
                             const SnoopingCacheConfig &config)
    : SnoopingCache(id, bus, table, std::move(chooser),
                    std::make_unique<PlainLineStore>(config.geometry,
                                                     config.replacement,
                                                     config.seed),
                    config.geometry.lineBytes, config.kind,
                    config.discardNearReplacement)
{
}

SnoopingCache::SnoopingCache(MasterId id, Bus &bus,
                             const ProtocolTable &table,
                             std::unique_ptr<ActionChooser> chooser,
                             std::unique_ptr<LineStore> store,
                             std::size_t line_bytes, ClientKind kind,
                             bool discard_near_replacement)
    : id_(id), bus_(bus), table_(table), chooser_(std::move(chooser)),
      kind_(kind), discardNearReplacement_(discard_near_replacement),
      lineBytes_(line_bytes), store_(std::move(store))
{
    fbsim_assert(chooser_ != nullptr);
    fbsim_assert(store_ != nullptr);
    fbsim_assert(kind_ != ClientKind::NonCaching);
    fbsim_assert(store_->wordsPerLine() == bus_.wordsPerLine());
    fbsim_assert(lineBytes_ / kWordBytes == store_->wordsPerLine());
    name_ = table_.name();
    if (kind_ == ClientKind::WriteThrough)
        name_ += " (write-through)";
    std::vector<std::string> problems = table_.validate();
    if (!problems.empty())
        fbsim_fatal("protocol table invalid: %s", problems[0].c_str());
}

const char *
SnoopingCache::protocolName() const
{
    return name_.c_str();
}

State
SnoopingCache::lineState(Addr addr) const
{
    const CacheLine *line = store_->peek(lineOf(addr));
    return line ? line->state : State::I;
}

std::vector<LocalAction>
SnoopingCache::kindFiltered(const LocalCell &cell) const
{
    std::vector<LocalAction> out;
    for (const LocalAction &a : cell) {
        if (a.kinds & kindBit(kind_))
            out.push_back(a);
    }
    return out;
}

AccessOutcome
SnoopingCache::read(Addr addr)
{
    ++stats_.reads;
    bool hit = isValid(lineState(addr));
    if (hit)
        ++stats_.readHits;
    else
        ++stats_.readMisses;
    return dispatchLocal(LocalEvent::Read, addr, 0, 0);
}

AccessOutcome
SnoopingCache::write(Addr addr, Word value)
{
    ++stats_.writes;
    bool present = isValid(lineState(addr));
    AccessOutcome outcome = dispatchLocal(LocalEvent::Write, addr, value, 0);
    if (!present)
        ++stats_.writeMisses;
    else if (outcome.usedBus)
        ++stats_.writeSharedBus;
    else
        ++stats_.writeHits;
    return outcome;
}

AccessOutcome
SnoopingCache::flush(Addr addr, bool keep_copy)
{
    return dispatchLocal(keep_copy ? LocalEvent::Pass : LocalEvent::Flush,
                         addr, 0, 0);
}

AccessOutcome
SnoopingCache::dispatchLocal(LocalEvent ev, Addr addr, Word value,
                             int depth)
{
    fbsim_assert(depth < 3);
    LineAddr la = lineOf(addr);
    CacheLine *line = store_->find(la);
    State s = line ? line->state : State::I;

    std::vector<LocalAction> candidates = kindFiltered(table_.local(s, ev));
    if (candidates.empty()) {
        // The paper's "--" cells: a Pass/Flush of a line we do not hold
        // (or hold clean, for Pass) is simply a no-op at the API level.
        if (ev == LocalEvent::Pass || ev == LocalEvent::Flush)
            return {};
        fbsim_panic("%s: no legal action for state %s on local %s",
                    name_.c_str(), std::string(stateName(s)).c_str(),
                    std::string(localEventName(ev)).c_str());
    }

    LocalAction action = chooser_->chooseLocal(kind_, s, ev, candidates);
    AccessOutcome outcome = executeLocal(action, ev, addr, value, depth);
    if (coverage_)
        coverage_->noteLocal(s, ev, lineState(addr));
    return outcome;
}

AccessOutcome
SnoopingCache::executeLocal(const LocalAction &action, LocalEvent ev,
                            Addr addr, Word value, int depth)
{
    LineAddr la = lineOf(addr);
    std::size_t wi = wordIndexOf(addr);
    AccessOutcome outcome;

    if (action.readThenWrite) {
        // Two transactions: a normal read (filling the line), then the
        // write dispatched on the new state.
        fbsim_assert(ev == LocalEvent::Write);
        AccessOutcome fill = dispatchLocal(LocalEvent::Read, addr, 0,
                                           depth + 1);
        AccessOutcome wr = dispatchLocal(LocalEvent::Write, addr, value,
                                         depth + 1);
        outcome.usedBus = fill.usedBus || wr.usedBus;
        outcome.busTransactions =
            fill.busTransactions + wr.busTransactions;
        outcome.busCycles = fill.busCycles + wr.busCycles;
        outcome.value = wr.value;
        return outcome;
    }

    if (!action.usesBus) {
        // Purely local transition (hit, silent upgrade, silent drop).
        CacheLine *line = store_->find(la);
        fbsim_assert(line != nullptr);
        fbsim_assert(!action.next.conditional());
        if (ev == LocalEvent::Write)
            line->data[wi] = value;
        outcome.value = line->data[wi];
        State ns = action.next.resolve(false);
        if (line->state != State::I && ns == State::I)
            ++stats_.evictions;
        line->state = ns;
        if (isValid(ns))
            store_->touch(*line);
        return outcome;
    }

    BusRequest req;
    req.master = id_;
    req.cmd = action.cmd;
    req.sig = {action.ca, action.im, action.bc};
    req.line = la;
    req.wordIdx = wi;
    req.wdata = value;

    switch (action.cmd) {
      case BusCmd::Read: {
        // Fill (plain read miss or read-for-ownership).  Make room
        // first: the victim's push precedes our fill on the bus.
        CacheLine &nl = allocateFor(la, outcome);
        BusResult r = bus_.execute(req);
        outcome.usedBus = true;
        outcome.busTransactions += 1;
        outcome.busCycles += r.cost;
        nl.data = std::move(r.line);
        nl.state = action.next.resolve(r.resp.ch);
        store_->touch(nl);
        if (r.suppliedByCache)
            ++stats_.dirtyFills;
        if (ev == LocalEvent::Write && isValid(nl.state))
            nl.data[wi] = value;
        outcome.value = nl.data[wi];
        return outcome;
      }

      case BusCmd::WriteWord: {
        // Write-through or broadcast update of one word.
        BusResult r = bus_.execute(req);
        outcome.usedBus = true;
        outcome.busTransactions = 1;
        outcome.busCycles = r.cost;
        outcome.value = value;
        CacheLine *line = store_->find(la);
        if (line) {
            line->data[wi] = value;
            line->state = action.next.resolve(r.resp.ch);
            if (isValid(line->state))
                store_->touch(*line);
        }
        return outcome;
      }

      case BusCmd::WriteLine: {
        // Push (Pass keeps the copy, Flush discards it).
        CacheLine *line = store_->find(la);
        fbsim_assert(line != nullptr);
        req.wline = line->data;
        BusResult r = bus_.execute(req);
        outcome.usedBus = true;
        outcome.busTransactions = 1;
        outcome.busCycles = r.cost;
        ++stats_.writebacks;
        line->state = action.next.resolve(r.resp.ch);
        outcome.value = line->data[wi];
        return outcome;
      }

      case BusCmd::Sync:
        // Consistency commands are issued via System::syncLine, never
        // from a protocol table.
        break;

      case BusCmd::AddrOnly: {
        // Pure invalidate; our copy is current (it matches the owner,
        // by the shared-image invariant) so no data moves.
        CacheLine *line = store_->find(la);
        fbsim_assert(line != nullptr);
        BusResult r = bus_.execute(req);
        outcome.usedBus = true;
        outcome.busTransactions = 1;
        outcome.busCycles = r.cost;
        if (ev == LocalEvent::Write)
            line->data[wi] = value;
        line->state = action.next.resolve(r.resp.ch);
        store_->touch(*line);
        outcome.value = line->data[wi];
        return outcome;
      }
    }
    fbsim_panic("unreachable");
}

CacheLine &
SnoopingCache::allocateFor(LineAddr la, AccessOutcome &outcome)
{
    // The store may demand several evictions (a sector cache replaces
    // a whole sector's subsectors at once).
    for (CacheLine *victim : store_->evictionSet(la)) {
        fbsim_assert(victim->valid());
        evict(*victim, outcome);
    }
    return store_->install(la, State::I);
}

void
SnoopingCache::evict(CacheLine &victim, AccessOutcome &outcome)
{
    State s = victim.state;
    ++stats_.evictions;
    std::vector<LocalAction> candidates =
        kindFiltered(table_.local(s, LocalEvent::Flush));
    if (candidates.empty()) {
        // Unowned data may always be dropped silently.
        fbsim_assert(!isOwned(s));
        victim.state = State::I;
        return;
    }
    LocalAction action =
        chooser_->chooseLocal(kind_, s, LocalEvent::Flush, candidates);
    if (coverage_)
        coverage_->noteLocal(s, LocalEvent::Flush, State::I);
    if (!action.usesBus) {
        victim.state = State::I;
        return;
    }
    fbsim_assert(action.cmd == BusCmd::WriteLine);
    BusRequest req;
    req.master = id_;
    req.cmd = BusCmd::WriteLine;
    req.sig = {action.ca, action.im, action.bc};
    req.line = victim.addr;
    req.wline = victim.data;
    BusResult r = bus_.execute(req);
    outcome.usedBus = true;
    outcome.busTransactions += 1;
    outcome.busCycles += r.cost;
    ++stats_.writebacks;
    victim.state = State::I;
}

SnoopReply
SnoopingCache::snoop(const BusRequest &req)
{
    pending_ = {};
    SnoopReply reply;

    CacheLine *line = store_->find(req.line);
    if (!line)
        return reply;

    std::optional<BusEvent> ev = classifyBusEvent(req.cmd, req.sig);
    fbsim_assert(ev.has_value());

    if (*ev == BusEvent::Push) {
        // A push by the (unique) owner: holders signal retention via
        // CH so an O->E / CH:S/E pass resolves correctly, but no state
        // changes (their copies already match the owner's).
        reply.resp.ch = true;
        pending_.active = true;
        pending_.isPush = true;
        pending_.line = line;
        return reply;
    }

    if (*ev == BusEvent::Sync) {
        // The section 6 consistency command.  Owners abort, push the
        // line to memory and demote to an unowned state; the retried
        // command then finds memory valid.  With IM asserted (purge)
        // every remaining holder invalidates; otherwise holders keep
        // their (now memory-consistent) copies.
        if (isOwned(line->state)) {
            SnoopAction action;
            action.bs = true;
            action.pushCa = true;
            action.pushState =
                line->state == State::M ? State::E : State::S;
            pending_.active = true;
            pending_.action = action;
            pending_.line = line;
            reply.resp.bs = true;
            return reply;
        }
        SnoopAction action;
        if (req.sig.im) {
            action.next = toState(State::I);
            action.ch = Tri::No;
        } else {
            action.next = toState(line->state);
            action.ch = Tri::Assert;
        }
        pending_.active = true;
        pending_.action = action;
        pending_.line = line;
        reply.resp.ch = action.ch == Tri::Assert;
        return reply;
    }

    const SnoopCell &cell = table_.snoop(line->state, *ev);
    if (cell.empty()) {
        fbsim_panic("%s cache %u: illegal bus event col %d on line in "
                    "state %s",
                    name_.c_str(), id_, busEventColumn(*ev),
                    std::string(stateName(line->state)).c_str());
    }

    SnoopAction action =
        chooser_->chooseSnoop(kind_, line->state, *ev, cell);

    // Section 5.2 refinement: discard instead of update when the line
    // is nearing replacement and the cell offers an invalidate.
    if (discardNearReplacement_ && !action.bs &&
        action.next.resolve(true) != State::I &&
        (*ev == BusEvent::BroadcastWriteCache ||
         *ev == BusEvent::BroadcastWriteNoCache) &&
        !isOwned(line->state) && store_->nearReplacement(*line)) {
        for (const SnoopAction &alt : cell) {
            if (alt.next == toState(State::I) && !alt.bs) {
                action = alt;
                break;
            }
        }
    }

    pending_.active = true;
    pending_.action = action;
    pending_.line = line;
    reply.resp.ch = action.ch == Tri::Assert;
    reply.resp.di = action.di;
    reply.resp.sl = action.sl;
    reply.resp.bs = action.bs;
    return reply;
}

void
SnoopingCache::supplyLine(const BusRequest &req, std::span<Word> out)
{
    fbsim_assert(pending_.active && pending_.action.di);
    fbsim_assert(pending_.line && pending_.line->addr == req.line);
    fbsim_assert(out.size() == pending_.line->data.size());
    ++stats_.interventions;
    std::copy(pending_.line->data.begin(), pending_.line->data.end(),
              out.begin());
}

void
SnoopingCache::commit(const BusRequest &req, bool others_ch)
{
    if (!pending_.active)
        return;
    Pending p = pending_;
    pending_ = {};
    if (p.isPush)
        return;

    CacheLine *line = p.line;
    fbsim_assert(line && line->addr == req.line);
    const SnoopAction &action = p.action;
    fbsim_assert(!action.bs);

    if (req.cmd == BusCmd::WriteWord && (action.di || action.sl)) {
        // Capture the written word: an owner absorbing a foreign write
        // (DI) or a holder snarfing a broadcast (SL).
        line->data[req.wordIdx] = req.wdata;
        if (action.di)
            ++stats_.writeCaptures;
        else
            ++stats_.updatesRecv;
    }

    State ns = action.next.resolve(others_ch);
    if (coverage_) {
        std::optional<BusEvent> ev = classifyBusEvent(req.cmd, req.sig);
        if (ev.has_value())
            coverage_->noteSnoop(line->state, *ev, ns);
    }
    if (line->state != State::I && ns == State::I)
        ++stats_.invalidationsRecv;
    line->state = ns;
}

void
SnoopingCache::performAbortPush(const BusRequest &req)
{
    fbsim_assert(pending_.active && pending_.action.bs);
    Pending p = pending_;
    pending_ = {};
    CacheLine *line = p.line;
    fbsim_assert(line && line->addr == req.line);
    fbsim_assert(isOwned(line->state));

    BusRequest push;
    push.master = id_;
    push.cmd = BusCmd::WriteLine;
    push.sig = {p.action.pushCa, false, false};
    push.line = line->addr;
    push.wline = line->data;
    bus_.execute(push);
    ++stats_.abortPushes;
    ++stats_.writebacks;
    if (coverage_) {
        std::optional<BusEvent> ev = classifyBusEvent(req.cmd, req.sig);
        if (ev.has_value())
            coverage_->noteSnoop(line->state, *ev, p.action.pushState);
    }
    line->state = p.action.pushState;
}

} // namespace fbsim
