#include "protocols/snooping_cache.h"

#include <bit>

#include "common/logging.h"

namespace fbsim {

SnoopingCache::SnoopingCache(MasterId id, Bus &bus,
                             const ProtocolTable &table,
                             std::unique_ptr<ActionChooser> chooser,
                             const SnoopingCacheConfig &config)
    : SnoopingCache(id, bus, table, std::move(chooser),
                    std::make_unique<PlainLineStore>(config.geometry,
                                                     config.replacement,
                                                     config.seed),
                    config.geometry.lineBytes, config.kind,
                    config.discardNearReplacement)
{
}

SnoopingCache::SnoopingCache(MasterId id, Bus &bus,
                             const ProtocolTable &table,
                             std::unique_ptr<ActionChooser> chooser,
                             std::unique_ptr<LineStore> store,
                             std::size_t line_bytes, ClientKind kind,
                             bool discard_near_replacement)
    : id_(id), bus_(bus), table_(table), chooser_(std::move(chooser)),
      kind_(kind), discardNearReplacement_(discard_near_replacement),
      lineBytes_(line_bytes), store_(std::move(store))
{
    fbsim_assert(chooser_ != nullptr);
    fbsim_assert(store_ != nullptr);
    fbsim_assert(kind_ != ClientKind::NonCaching);
    fbsim_assert(store_->wordsPerLine() == bus_.wordsPerLine());
    fbsim_assert(lineBytes_ / kWordBytes == store_->wordsPerLine());
    fbsim_assert((lineBytes_ & (lineBytes_ - 1)) == 0);
    lineShift_ = static_cast<unsigned>(std::countr_zero(lineBytes_));
    memoize_ = chooser_->deterministic();
    plain_ = dynamic_cast<PlainLineStore *>(store_.get());
    specStamp_ = plain_ != nullptr &&
                 plain_->tags().touchKind() ==
                     ReplacementPolicy::TouchKind::Stamp;
    updateFastPath();
    name_ = table_.name();
    if (kind_ == ClientKind::WriteThrough)
        name_ += " (write-through)";
    std::vector<std::string> problems = table_.validate();
    if (!problems.empty())
        fbsim_fatal("protocol table invalid: %s", problems[0].c_str());
}

const char *
SnoopingCache::protocolName() const
{
    return name_.c_str();
}

const std::vector<LocalAction> &
SnoopingCache::kindFiltered(const LocalCell &cell)
{
    candScratch_.clear();
    for (const LocalAction &a : cell) {
        if (a.kinds & kindBit(kind_))
            candScratch_.push_back(a);
    }
    return candScratch_;
}

void
SnoopingCache::fillLocalMemo(LocalMemo &m, State s, LocalEvent ev)
{
    const std::vector<LocalAction> &candidates =
        kindFiltered(table_.local(s, ev));
    m.empty = candidates.empty();
    if (!m.empty)
        m.action = chooser_->chooseLocal(kind_, s, ev, candidates);
    m.filled = true;
}

void
SnoopingCache::fillSnoopMemo(SnoopMemo &m, State s, BusEvent ev)
{
    const SnoopCell &cell = table_.snoop(s, ev);
    if (cell.empty()) {
        if (faultTolerant_) {
            m.empty = true;
            m.filled = true;
            return;
        }
        fbsim_panic("%s cache %u: illegal bus event col %d on line "
                    "in state %s",
                    name_.c_str(), id_, busEventColumn(ev),
                    std::string(stateName(s)).c_str());
    }
    m.action = chooser_->chooseSnoop(kind_, s, ev, cell);
    for (const SnoopAction &alt : cell) {
        if (alt.next == toState(State::I) && !alt.bs) {
            m.discardAlt = &alt;
            break;
        }
    }
    m.filled = true;
}

void
SnoopingCache::setLineState(CacheLine &line, State next)
{
    bool was = isValid(line.state);
    bool now = isValid(next);
    store_->setState(line, next);
    if (was != now)
        bus_.notePresence(id_, line.addr, now);
}

void
SnoopingCache::updateFastPath()
{
    fastLocal_ =
        memoize_ && plain_ != nullptr && coverage_ == nullptr &&
        !quarantined_;
}

void
SnoopingCache::specRollbackTo(std::uint64_t count)
{
    TagStore &tags = plain_->tags();
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    fbsim_assert(specUndo_.size() - specUndoHead_ >= count);
    while (count-- > 0) {
        SpecUndo &u = specUndo_.back();
        if (u.write) {
            // A speculated write required M/E, so no snooped
            // transaction can have touched the line since (exclusivity
            // - any snoop hit would have rolled this entry back
            // first); the restore target is exactly as the write left
            // it.
            fbsim_assert(u.line->valid());
            u.line->data[u.wordIdx] = u.prevWord;
            if (u.prevState != u.line->state)
                tags.setState(*u.line, u.prevState);
            ++writes;
        } else {
            ++reads;
        }
        if (specStamp_) {
            tags.restoreStamp(*u.line, u.stamp);
            tags.undoTouchClock();
        }
        specUndo_.pop_back();
    }
    stats_.reads -= reads;
    stats_.readHits -= reads;
    stats_.writes -= writes;
    stats_.writeHits -= writes;
}

void
SnoopingCache::specDropCommitted(std::uint64_t count)
{
    std::size_t h = specUndoHead_ + count;
    fbsim_assert(h <= specUndo_.size());
    if (h == specUndo_.size()) {
        specUndo_.clear();
        specUndoHead_ = 0;
        return;
    }
    specUndoHead_ = h;
    // Keep the dead prefix bounded so a long run with a persistent
    // uncommitted tail cannot grow the log without bound.
    if (specUndoHead_ >= 1024 &&
        specUndoHead_ * 2 >= specUndo_.size()) {
        specUndo_.erase(specUndo_.begin(),
                        specUndo_.begin() +
                            static_cast<std::ptrdiff_t>(specUndoHead_));
        specUndoHead_ = 0;
    }
}

void
SnoopingCache::fillHitPlan(HitPlan &p, bool is_write, State s)
{
    const LocalMemo &m = localMemoFor(
        s, is_write ? LocalEvent::Write : LocalEvent::Read);
    p.pure = false;
    if (!m.empty && !m.action.usesBus && !m.action.readThenWrite &&
        !m.action.next.conditional()) {
        State ns = m.action.next.resolve(false);
        // A hit that silently drops the line (ns == I) must take the
        // generic path (eviction counting, presence update); a read
        // that changes state at all is equally out of scope.
        if (isValid(ns) && (is_write || ns == s)) {
            p.pure = true;
            p.next = ns;
        }
    }
    p.filled = true;
}

bool
SnoopingCache::readTransparent(State ns)
{
    if (!isValid(ns))
        return false;
    const LocalMemo &m = localMemoFor(ns, LocalEvent::Read);
    return !m.empty && !m.action.usesBus && !m.action.readThenWrite &&
           !m.action.next.conditional() &&
           m.action.next.resolve(false) == ns;
}

AccessOutcome
SnoopingCache::read(Addr addr)
{
    if (fastLocal_) {
        // Devirtualized hit path: packed-tag lookup, pre-resolved
        // plan.  Pure read hits never change state, so only the data
        // word and the replacement touch happen.
        AccessOutcome o;
        if (tryLocalRead(addr, o.value))
            return o;
    }
    ++stats_.reads;
    if (quarantined_) {
        ++stats_.readMisses;
        return bypassRead(addr);
    }
    // Every protocol table serves a read on a valid line locally, so a
    // read used the bus iff it missed; no separate state probe needed.
    AccessOutcome outcome = dispatchLocal(LocalEvent::Read, addr, 0, 0);
    if (outcome.faulted)
        ++stats_.faultedAccesses;
    if (outcome.usedBus)
        ++stats_.readMisses;
    else
        ++stats_.readHits;
    return outcome;
}

AccessOutcome
SnoopingCache::write(Addr addr, Word value)
{
    if (fastLocal_) {
        // Devirtualized hit path via the fused probe.
        if (tryLocalWrite(addr, value)) {
            AccessOutcome o;
            o.value = value;
            return o;
        }
    }
    ++stats_.writes;
    if (quarantined_) {
        ++stats_.writeMisses;
        return bypassWrite(addr, value);
    }
    bool present = isValid(lineState(addr));
    AccessOutcome outcome = dispatchLocal(LocalEvent::Write, addr, value, 0);
    if (outcome.faulted)
        ++stats_.faultedAccesses;
    if (!present)
        ++stats_.writeMisses;
    else if (outcome.usedBus)
        ++stats_.writeSharedBus;
    else
        ++stats_.writeHits;
    return outcome;
}

AccessOutcome
SnoopingCache::flush(Addr addr, bool keep_copy)
{
    if (quarantined_)
        return {};
    AccessOutcome outcome =
        dispatchLocal(keep_copy ? LocalEvent::Pass : LocalEvent::Flush,
                      addr, 0, 0);
    if (outcome.faulted)
        ++stats_.faultedAccesses;
    return outcome;
}

AccessOutcome
SnoopingCache::bypassRead(Addr addr)
{
    BusRequest req;
    req.master = id_;
    req.cmd = BusCmd::Read;
    req.sig = {false, false, false};   // "I,R**": no CA asserted
    req.line = lineOf(addr);
    BusResult r = bus_.execute(req);
    AccessOutcome outcome;
    outcome.usedBus = true;
    outcome.busTransactions = 1;
    outcome.busCycles = r.cost;
    if (!r.converged) {
        outcome.faulted = true;
        ++stats_.faultedAccesses;
        return outcome;
    }
    outcome.value = r.line[wordIndexOf(addr)];
    bus_.recycleLineBuffer(std::move(r.line));
    return outcome;
}

AccessOutcome
SnoopingCache::bypassWrite(Addr addr, Word value)
{
    BusRequest req;
    req.master = id_;
    req.cmd = BusCmd::WriteWord;
    req.sig = {false, true, false};    // "I,IM,W**"
    req.line = lineOf(addr);
    req.wordIdx = wordIndexOf(addr);
    req.wdata = value;
    BusResult r = bus_.execute(req);
    AccessOutcome outcome;
    outcome.usedBus = true;
    outcome.busTransactions = 1;
    outcome.busCycles = r.cost;
    outcome.value = value;
    if (!r.converged) {
        outcome.faulted = true;
        ++stats_.faultedAccesses;
    }
    return outcome;
}

AccessOutcome
SnoopingCache::dispatchLocal(LocalEvent ev, Addr addr, Word value,
                             int depth)
{
    fbsim_assert(depth < 3);
    LineAddr la = lineOf(addr);
    CacheLine *line = cachedFind(la);
    State s = line ? line->state : State::I;

    LocalAction chosen;
    const LocalAction *action = &chosen;
    bool no_action;
    if (memoize_) {
        const LocalMemo &m = localMemoFor(s, ev);
        no_action = m.empty;
        action = &m.action;
    } else {
        const std::vector<LocalAction> &candidates =
            kindFiltered(table_.local(s, ev));
        no_action = candidates.empty();
        if (!no_action) {
            chosen = chooser_->chooseLocal(kind_, s, ev, candidates);
            action = &chosen;
        }
    }
    if (no_action) {
        // The paper's "--" cells: a Pass/Flush of a line we do not hold
        // (or hold clean, for Pass) is simply a no-op at the API level.
        if (ev == LocalEvent::Pass || ev == LocalEvent::Flush)
            return {};
        fbsim_panic("%s: no legal action for state %s on local %s",
                    name_.c_str(), std::string(stateName(s)).c_str(),
                    std::string(localEventName(ev)).c_str());
    }

    AccessOutcome outcome =
        executeLocal(*action, ev, addr, value, depth, line);
    if (coverage_)
        coverage_->noteLocal(s, ev, lineState(addr));
    return outcome;
}

AccessOutcome
SnoopingCache::executeLocal(const LocalAction &action, LocalEvent ev,
                            Addr addr, Word value, int depth,
                            CacheLine *line)
{
    LineAddr la = lineOf(addr);
    std::size_t wi = wordIndexOf(addr);
    AccessOutcome outcome;

    if (action.readThenWrite) {
        // Two transactions: a normal read (filling the line), then the
        // write dispatched on the new state.
        fbsim_assert(ev == LocalEvent::Write);
        AccessOutcome fill = dispatchLocal(LocalEvent::Read, addr, 0,
                                           depth + 1);
        if (fill.faulted) {
            // The fill gave up (fault injection); the line is still
            // invalid, so dispatching the write would just re-resolve
            // to this same read-then-write.  Fail the whole access.
            return fill;
        }
        AccessOutcome wr = dispatchLocal(LocalEvent::Write, addr, value,
                                         depth + 1);
        outcome.usedBus = fill.usedBus || wr.usedBus;
        outcome.busTransactions =
            fill.busTransactions + wr.busTransactions;
        outcome.busCycles = fill.busCycles + wr.busCycles;
        outcome.faulted = wr.faulted;
        outcome.value = wr.value;
        return outcome;
    }

    if (!action.usesBus) {
        // Purely local transition (hit, silent upgrade, silent drop).
        // The line was already located by dispatchLocal.
        fbsim_assert(line != nullptr);
        fbsim_assert(!action.next.conditional());
        if (ev == LocalEvent::Write)
            line->data[wi] = value;
        outcome.value = line->data[wi];
        State ns = action.next.resolve(false);
        if (line->state != State::I && ns == State::I)
            ++stats_.evictions;
        setLineState(*line, ns);
        if (isValid(ns))
            store_->touch(*line);
        return outcome;
    }

    BusRequest req;
    req.master = id_;
    req.cmd = action.cmd;
    req.sig = {action.ca, action.im, action.bc};
    req.line = la;
    req.wordIdx = wi;
    req.wdata = value;

    switch (action.cmd) {
      case BusCmd::Read: {
        // Fill (plain read miss or read-for-ownership).  Make room
        // first: the victim's push precedes our fill on the bus.
        CacheLine *nl = allocateFor(la, outcome);
        if (!nl) {
            // The victim's writeback gave up (fault injection); its
            // frame is still occupied, so the fill cannot proceed.
            outcome.faulted = true;
            return outcome;
        }
        BusResult r = bus_.execute(req);
        outcome.usedBus = true;
        outcome.busTransactions += 1;
        outcome.busCycles += r.cost;
        if (!r.converged) {
            // No data arrived and no snooper changed state; the frame
            // stays invalid and the access fails.
            outcome.faulted = true;
            return outcome;
        }
        // Swap the filled buffer in and donate our old storage back
        // to the bus pool: steady-state fills never allocate.
        nl->data.swap(r.line);
        bus_.recycleLineBuffer(std::move(r.line));
        setLineState(*nl, action.next.resolve(r.resp.ch));
        store_->touch(*nl);
        if (r.suppliedByCache)
            ++stats_.dirtyFills;
        if (ev == LocalEvent::Write && isValid(nl->state))
            nl->data[wi] = value;
        outcome.value = nl->data[wi];
        return outcome;
      }

      case BusCmd::WriteWord: {
        // Write-through or broadcast update of one word.
        BusResult r = bus_.execute(req);
        outcome.usedBus = true;
        outcome.busTransactions = 1;
        outcome.busCycles = r.cost;
        outcome.value = value;
        if (!r.converged) {
            // The word never reached the bus; local state unchanged.
            outcome.faulted = true;
            return outcome;
        }
        CacheLine *line = cachedFind(la);
        if (line) {
            line->data[wi] = value;
            setLineState(*line, action.next.resolve(r.resp.ch));
            if (isValid(line->state))
                store_->touch(*line);
        }
        return outcome;
      }

      case BusCmd::WriteLine: {
        // Push (Pass keeps the copy, Flush discards it).
        CacheLine *line = cachedFind(la);
        fbsim_assert(line != nullptr);
        req.wline = line->data;
        BusResult r = bus_.execute(req);
        outcome.usedBus = true;
        outcome.busTransactions = 1;
        outcome.busCycles = r.cost;
        if (!r.converged) {
            // Memory never captured the line; keep state (and thus
            // ownership/data) so nothing is lost.
            outcome.faulted = true;
            return outcome;
        }
        ++stats_.writebacks;
        setLineState(*line, action.next.resolve(r.resp.ch));
        outcome.value = line->data[wi];
        return outcome;
      }

      case BusCmd::Sync:
        // Consistency commands are issued via System::syncLine, never
        // from a protocol table.
        break;

      case BusCmd::AddrOnly: {
        // Pure invalidate; our copy is current (it matches the owner,
        // by the shared-image invariant) so no data moves.
        CacheLine *line = cachedFind(la);
        fbsim_assert(line != nullptr);
        BusResult r = bus_.execute(req);
        outcome.usedBus = true;
        outcome.busTransactions = 1;
        outcome.busCycles = r.cost;
        if (!r.converged) {
            // Nobody saw the invalidate; the write must not land.
            outcome.faulted = true;
            return outcome;
        }
        if (ev == LocalEvent::Write)
            line->data[wi] = value;
        setLineState(*line, action.next.resolve(r.resp.ch));
        store_->touch(*line);
        outcome.value = line->data[wi];
        return outcome;
      }
    }
    fbsim_panic("unreachable");
}

CacheLine *
SnoopingCache::allocateFor(LineAddr la, AccessOutcome &outcome)
{
    // The store may demand several evictions (a sector cache replaces
    // a whole sector's subsectors at once).
    for (CacheLine *victim : store_->evictionSet(la)) {
        fbsim_assert(victim->valid());
        if (!evict(*victim, outcome)) {
            // The victim's writeback gave up (fault injection); it
            // still holds valid owned data, so installing over it
            // would lose the only copy.  Fail the allocation instead.
            outcome.faulted = true;
            return nullptr;
        }
    }
    return &store_->install(la, State::I);
}

bool
SnoopingCache::evict(CacheLine &victim, AccessOutcome &outcome)
{
    State s = victim.state;
    LocalAction chosen;
    const LocalAction *actionp = &chosen;
    bool no_action;
    if (memoize_) {
        const LocalMemo &m = localMemoFor(s, LocalEvent::Flush);
        no_action = m.empty;
        actionp = &m.action;
    } else {
        const std::vector<LocalAction> &candidates =
            kindFiltered(table_.local(s, LocalEvent::Flush));
        no_action = candidates.empty();
        if (!no_action) {
            chosen = chooser_->chooseLocal(kind_, s, LocalEvent::Flush,
                                           candidates);
        }
    }
    if (no_action) {
        // Unowned data may always be dropped silently.
        fbsim_assert(!isOwned(s));
        ++stats_.evictions;
        setLineState(victim, State::I);
        return true;
    }
    const LocalAction &action = *actionp;
    if (coverage_)
        coverage_->noteLocal(s, LocalEvent::Flush, State::I);
    if (!action.usesBus) {
        ++stats_.evictions;
        setLineState(victim, State::I);
        return true;
    }
    fbsim_assert(action.cmd == BusCmd::WriteLine);
    BusRequest req;
    req.master = id_;
    req.cmd = BusCmd::WriteLine;
    req.sig = {action.ca, action.im, action.bc};
    req.line = victim.addr;
    req.wline = victim.data;
    BusResult r = bus_.execute(req);
    outcome.usedBus = true;
    outcome.busTransactions += 1;
    outcome.busCycles += r.cost;
    if (!r.converged) {
        // Writeback gave up (fault injection): keep the victim's state
        // and data so the only copy is not lost.
        return false;
    }
    ++stats_.evictions;
    ++stats_.writebacks;
    setLineState(victim, State::I);
    return true;
}

SnoopReply
SnoopingCache::ignoredIllegalSnoop(State s, BusEvent ev, LineAddr la)
{
    // Fault-degraded: the protocol never generates this (state, event)
    // pair, so reaching it means an injected fault already diverged
    // the system (e.g. double ownership after a muted invalidate).
    // Respond as if the address cycle was missed; the always-on
    // checker reports the underlying divergence.
    ++stats_.illegalSnoops;
    if (!warnedIllegalSnoop_) {
        warnedIllegalSnoop_ = true;
        fbsim_warn("%s cache %u: ignoring illegal bus event col %d on "
                 "line %llu in state %s (fault-degraded; counted in "
                 "illegalSnoops)",
                 name_.c_str(), id_, busEventColumn(ev),
                 static_cast<unsigned long long>(la),
                 std::string(stateName(s)).c_str());
    }
    return {};
}

SnoopReply
SnoopingCache::snoop(const BusRequest &req)
{
    // Clearing the flags alone un-latches any previous decision; the
    // other fields are only read after a latch rewrites them.
    pending_.active = false;
    pending_.isPush = false;
    SnoopReply reply;

    CacheLine *line = cachedFind(req.line);
    if (!line)
        return reply;

    BusEvent ev = req.event;

    if (ev == BusEvent::Push) {
        // A push by the (unique) owner: holders signal retention via
        // CH so an O->E / CH:S/E pass resolves correctly, but no state
        // changes (their copies already match the owner's).
        reply.resp.ch = true;
        pending_.active = true;
        pending_.isPush = true;
        pending_.line = line;
        return reply;
    }

    if (ev == BusEvent::Sync) {
        // The section 6 consistency command.  Owners abort, push the
        // line to memory and demote to an unowned state; the retried
        // command then finds memory valid.  With IM asserted (purge)
        // every remaining holder invalidates; otherwise holders keep
        // their (now memory-consistent) copies.
        if (isOwned(line->state)) {
            SnoopAction action;
            action.bs = true;
            action.pushCa = true;
            action.pushState =
                line->state == State::M ? State::E : State::S;
            pending_.active = true;
            pending_.action = action;
            pending_.line = line;
            reply.resp.bs = true;
            return reply;
        }
        SnoopAction action;
        if (req.sig.im) {
            action.next = toState(State::I);
            action.ch = Tri::No;
        } else {
            action.next = toState(line->state);
            action.ch = Tri::Assert;
        }
        pending_.active = true;
        pending_.action = action;
        pending_.line = line;
        reply.resp.ch = action.ch == Tri::Assert;
        return reply;
    }

    SnoopAction chosen;
    const SnoopAction *action = &chosen;
    if (memoize_) {
        const SnoopMemo &m = snoopMemoFor(line->state, ev);
        if (m.empty)
            return ignoredIllegalSnoop(line->state, ev, req.line);
        action = &m.action;
        // Section 5.2 refinement: discard instead of update when the
        // line is nearing replacement and the cell offers an
        // invalidate.
        if (discardNearReplacement_ && m.discardAlt && !action->bs &&
            action->next.resolve(true) != State::I &&
            (ev == BusEvent::BroadcastWriteCache ||
             ev == BusEvent::BroadcastWriteNoCache) &&
            !isOwned(line->state) && store_->nearReplacement(*line)) {
            action = m.discardAlt;
        }
    } else {
        const SnoopCell &cell = table_.snoop(line->state, ev);
        if (cell.empty()) {
            if (faultTolerant_)
                return ignoredIllegalSnoop(line->state, ev, req.line);
            fbsim_panic("%s cache %u: illegal bus event col %d on line "
                        "in state %s",
                        name_.c_str(), id_, busEventColumn(ev),
                        std::string(stateName(line->state)).c_str());
        }

        chosen = chooser_->chooseSnoop(kind_, line->state, ev, cell);

        // Section 5.2 refinement (as above).
        if (discardNearReplacement_ && !chosen.bs &&
            chosen.next.resolve(true) != State::I &&
            (ev == BusEvent::BroadcastWriteCache ||
             ev == BusEvent::BroadcastWriteNoCache) &&
            !isOwned(line->state) && store_->nearReplacement(*line)) {
            for (const SnoopAction &alt : cell) {
                if (alt.next == toState(State::I) && !alt.bs) {
                    chosen = alt;
                    break;
                }
            }
        }
    }

    pending_.active = true;
    pending_.action = *action;
    pending_.line = line;
    reply.resp.ch = action->ch == Tri::Assert;
    reply.resp.di = action->di;
    reply.resp.sl = action->sl;
    reply.resp.bs = action->bs;
    return reply;
}

void
SnoopingCache::supplyLine(const BusRequest &req, std::span<Word> out)
{
    fbsim_assert(pending_.active && pending_.action.di);
    fbsim_assert(pending_.line && pending_.line->addr == req.line);
    fbsim_assert(out.size() == pending_.line->data.size());
    ++stats_.interventions;
    std::copy(pending_.line->data.begin(), pending_.line->data.end(),
              out.begin());
}

void
SnoopingCache::commit(const BusRequest &req, bool others_ch)
{
    if (!pending_.active)
        return;
    // No copy: commit never re-enters the bus, so pending_ cannot be
    // overwritten underneath us (unlike performAbortPush, which nests
    // a transaction that re-snoops this cache).
    pending_.active = false;
    if (pending_.isPush)
        return;

    CacheLine *line = pending_.line;
    fbsim_assert(line && line->addr == req.line);
    const SnoopAction &action = pending_.action;
    fbsim_assert(!action.bs);

    bool mutated = false;
    if (req.cmd == BusCmd::WriteWord && (action.di || action.sl)) {
        // Capture the written word: an owner absorbing a foreign write
        // (DI) or a holder snarfing a broadcast (SL).
        line->data[req.wordIdx] = req.wdata;
        mutated = true;
        if (action.di)
            ++stats_.writeCaptures;
        else
            ++stats_.updatesRecv;
    }

    State ns = action.next.resolve(others_ch);
    // Speculation conflict: only a commit that changes this copy's
    // observable contents can invalidate a pending hit run.  A no-op
    // commit (a sharer answering CH and keeping state and data) leaves
    // replayed hits byte-identical, so it stays silent.  A captured
    // foreign write with the state unchanged mutates exactly one word,
    // so the record carries that word and speculation on the line's
    // other words survives.  A pure downgrade (foreign read demoting
    // M->O or E->S) keeps the data and still serves pure read hits, so
    // standing read runs replay byte-identically and no record is
    // needed; speculated writes on this line cannot be outstanding
    // (the engine rolls them back before executing the transaction).
    if (specLog_) {
        if (ns != line->state && !readTransparent(ns))
            specLog_->push_back({id_, req.line, -1});
        else if (mutated)
            specLog_->push_back(
                {id_, req.line, static_cast<std::int32_t>(req.wordIdx)});
    }
    if (coverage_) {
        std::optional<BusEvent> ev = classifyBusEvent(req.cmd, req.sig);
        if (ev.has_value())
            coverage_->noteSnoop(line->state, *ev, ns);
    }
    if (line->state != State::I && ns == State::I)
        ++stats_.invalidationsRecv;
    setLineState(*line, ns);
}

void
SnoopingCache::performAbortPush(const BusRequest &req)
{
    fbsim_assert(pending_.active && pending_.action.bs);
    Pending p = pending_;
    pending_ = {};
    CacheLine *line = p.line;
    fbsim_assert(line && line->addr == req.line);
    fbsim_assert(isOwned(line->state));

    BusRequest push;
    push.master = id_;
    push.cmd = BusCmd::WriteLine;
    push.sig = {p.action.pushCa, false, false};
    push.line = line->addr;
    push.wline = line->data;
    BusResult r = bus_.execute(push);
    if (!r.converged) {
        // The nested push gave up (fault injection): keep ownership
        // and data; the outer transaction's next round aborts again
        // and re-triggers the push until one side succeeds or the
        // outer retry budget runs out.
        return;
    }
    ++stats_.abortPushes;
    ++stats_.writebacks;
    if (coverage_) {
        std::optional<BusEvent> ev = classifyBusEvent(req.cmd, req.sig);
        if (ev.has_value())
            coverage_->noteSnoop(line->state, *ev, p.action.pushState);
    }
    if (specLog_ && p.action.pushState != line->state &&
        !readTransparent(p.action.pushState))
        specLog_->push_back({id_, req.line, -1});
    setLineState(*line, p.action.pushState);
}

AccessOutcome
SnoopingCache::quarantine()
{
    AccessOutcome outcome;
    if (quarantined_)
        return outcome;
    // Collect first: evict() invalidates through setLineState, which
    // must not run under the store's own iteration.
    std::vector<LineAddr> held;
    store_->forEachValidLine([&](const CacheLine &line) {
        held.push_back(line.addr);
    });
    for (LineAddr la : held) {
        CacheLine *line = cachedFind(la);
        if (!line)
            continue;   // invalidated by an earlier flush's snoop
        if (!evict(*line, outcome)) {
            // Even the quarantine flush could not converge.  Loud data
            // loss beats silent corruption: drop the copy and say so.
            fbsim_warn("cache %u quarantine: flush of line %llu did "
                     "not converge; owned data lost",
                     id_, static_cast<unsigned long long>(la));
            setLineState(*line, State::I);
        }
    }
    quarantined_ = true;
    updateFastPath();
    return outcome;
}

bool
SnoopingCache::reintegrate()
{
    if (!quarantined_)
        return false;
    // The quarantine flush already emptied the store and bypass mode
    // never refills it, but a rejoin must not *assume* that: bulk-
    // invalidate any residual copies (an epoch bump, O(1) in the
    // conventional store) and wipe this cache's snoop-filter presence
    // bits wholesale, so the bitmask ends exact no matter what
    // happened in between - without walking a single line.
    store_->bulkInvalidate();
    bus_.clearPresence(id_);
    pending_ = Pending{};
    lastLine_ = nullptr;
    quarantined_ = false;
    updateFastPath();
    return true;
}

std::optional<LineAddr>
SnoopingCache::corruptRandomBit(Rng &rng)
{
    std::vector<CacheLine *> victims;
    store_->forEachValidLine([&](const CacheLine &line) {
        victims.push_back(const_cast<CacheLine *>(&line));
    });
    if (victims.empty())
        return std::nullopt;
    CacheLine *victim = victims[rng.below(victims.size())];
    std::size_t wi = rng.below(victim->data.size());
    unsigned bit = static_cast<unsigned>(rng.below(kWordBytes * 8));
    victim->data[wi] ^= Word{1} << bit;
    return victim->addr;
}

} // namespace fbsim
