/**
 * @file
 * Per-cache activity counters.
 */

#ifndef FBSIM_PROTOCOLS_CACHE_STATS_H_
#define FBSIM_PROTOCOLS_CACHE_STATS_H_

#include <cstdint>

namespace fbsim {

/** Counters maintained by every cache controller. */
struct CacheStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t readHits = 0;
    std::uint64_t writeHits = 0;          ///< completed without the bus
    std::uint64_t readMisses = 0;
    std::uint64_t writeMisses = 0;        ///< line absent on a write
    std::uint64_t writeSharedBus = 0;     ///< hit but bus needed (O/S)
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;         ///< dirty pushes (evict/flush)
    std::uint64_t invalidationsRecv = 0;  ///< copy killed by a bus event
    std::uint64_t updatesRecv = 0;        ///< copy updated by broadcast
    std::uint64_t interventions = 0;      ///< lines supplied via DI
    std::uint64_t writeCaptures = 0;      ///< words captured via DI
    std::uint64_t abortPushes = 0;        ///< BS abort/push responses
    std::uint64_t dirtyFills = 0;         ///< fills supplied by a cache
    std::uint64_t faultedAccesses = 0;    ///< gave up (fault injection)
    std::uint64_t illegalSnoops = 0;      ///< undefined cells ignored
                                          ///  (fault-degraded mode)

    double
    missRatio() const
    {
        std::uint64_t total = reads + writes;
        std::uint64_t misses = readMisses + writeMisses;
        return total == 0 ? 0.0
                          : static_cast<double>(misses) /
                                static_cast<double>(total);
    }

    /** Sharded and serial runs of one workload must agree exactly. */
    bool operator==(const CacheStats &) const = default;

    /** Accumulate (campaign aggregation across a system's caches). */
    CacheStats &
    operator+=(const CacheStats &o)
    {
        reads += o.reads;
        writes += o.writes;
        readHits += o.readHits;
        writeHits += o.writeHits;
        readMisses += o.readMisses;
        writeMisses += o.writeMisses;
        writeSharedBus += o.writeSharedBus;
        evictions += o.evictions;
        writebacks += o.writebacks;
        invalidationsRecv += o.invalidationsRecv;
        updatesRecv += o.updatesRecv;
        interventions += o.interventions;
        writeCaptures += o.writeCaptures;
        abortPushes += o.abortPushes;
        dirtyFills += o.dirtyFills;
        faultedAccesses += o.faultedAccesses;
        illegalSnoops += o.illegalSnoops;
        return *this;
    }
};

} // namespace fbsim

#endif // FBSIM_PROTOCOLS_CACHE_STATS_H_
