#include "protocols/non_caching.h"

#include "common/logging.h"

namespace fbsim {

NonCachingMaster::NonCachingMaster(MasterId id, Bus &bus,
                                   std::size_t line_bytes,
                                   bool broadcast_writes)
    : id_(id), bus_(bus), lineBytes_(line_bytes),
      broadcastWrites_(broadcast_writes)
{
    fbsim_assert(line_bytes / kWordBytes == bus.wordsPerLine());
}

AccessOutcome
NonCachingMaster::read(Addr addr)
{
    ++stats_.reads;
    ++stats_.readMisses;
    BusRequest req;
    req.master = id_;
    req.cmd = BusCmd::Read;
    req.sig = {false, false, false};   // "I,R**": no CA asserted
    req.line = addr / lineBytes_;
    BusResult r = bus_.execute(req);
    AccessOutcome outcome;
    outcome.usedBus = true;
    outcome.busTransactions = 1;
    outcome.busCycles = r.cost;
    if (!r.converged) {
        outcome.faulted = true;
        ++stats_.faultedAccesses;
        return outcome;
    }
    outcome.value = r.line[(addr % lineBytes_) / kWordBytes];
    bus_.recycleLineBuffer(std::move(r.line));
    return outcome;
}

AccessOutcome
NonCachingMaster::write(Addr addr, Word value)
{
    ++stats_.writes;
    ++stats_.writeMisses;
    BusRequest req;
    req.master = id_;
    req.cmd = BusCmd::WriteWord;
    req.sig = {false, true, broadcastWrites_};   // "I,IM,[BC],W**"
    req.line = addr / lineBytes_;
    req.wordIdx = (addr % lineBytes_) / kWordBytes;
    req.wdata = value;
    BusResult r = bus_.execute(req);
    AccessOutcome outcome;
    outcome.usedBus = true;
    outcome.busTransactions = 1;
    outcome.busCycles = r.cost;
    outcome.value = value;
    if (!r.converged) {
        outcome.faulted = true;
        ++stats_.faultedAccesses;
    }
    return outcome;
}

} // namespace fbsim
