/**
 * @file
 * Table-driven snooping cache controller.
 *
 * One controller class interprets any ProtocolTable - MOESI itself or
 * any of the paper's Tables 3-7 - with the choice points delegated to
 * an ActionChooser.  This is the design that makes section 3.4 literal:
 * a cache can be "MOESI preferred", "Berkeley", "random member of the
 * class", etc., purely by configuration, and mixed systems follow.
 *
 * The same class also implements the write-through cache of the paper
 * by restricting itself to the "*" alternatives of Tables 1/2 (its V
 * state is S); see ClientKind.
 */

#ifndef FBSIM_PROTOCOLS_SNOOPING_CACHE_H_
#define FBSIM_PROTOCOLS_SNOOPING_CACHE_H_

#include <memory>
#include <string>

#include "bus/bus.h"
#include "cache/line_store.h"
#include "core/policy.h"
#include "core/protocol_table.h"
#include "protocols/bus_client.h"
#include "protocols/cache_stats.h"
#include "protocols/transition_coverage.h"

namespace fbsim {

/** Configuration of one snooping cache. */
struct SnoopingCacheConfig
{
    CacheGeometry geometry;
    ReplacementKind replacement = ReplacementKind::LRU;
    /** CopyBack or WriteThrough (NonCaching uses NonCachingMaster). */
    ClientKind kind = ClientKind::CopyBack;
    /** Seed for the replacement policy (Random). */
    std::uint64_t seed = 1;
    /**
     * Section 5.2 refinement: when a broadcast-written line is nearing
     * replacement, discard it instead of updating it (requires the
     * chosen table cell to offer an invalidate alternative).
     */
    bool discardNearReplacement = false;
};

/** A snooping cache: processor port + bus snooper. */
class SnoopingCache : public BusClient, public Snooper
{
  public:
    /**
     * @param id bus module id.
     * @param bus the shared bus (must outlive the cache).
     * @param table protocol definition (must outlive the cache).
     * @param chooser action selection strategy (owned).
     * @param config geometry etc.
     */
    SnoopingCache(MasterId id, Bus &bus, const ProtocolTable &table,
                  std::unique_ptr<ActionChooser> chooser,
                  const SnoopingCacheConfig &config);

    /**
     * Construct over an explicit line store (e.g. a SectorStore for
     * the section 5.1 sector-cache organization).  `line_bytes` is the
     * system line (transfer subsector) size.
     */
    SnoopingCache(MasterId id, Bus &bus, const ProtocolTable &table,
                  std::unique_ptr<ActionChooser> chooser,
                  std::unique_ptr<LineStore> store,
                  std::size_t line_bytes, ClientKind kind,
                  bool discard_near_replacement = false);

    // BusClient interface.
    MasterId clientId() const override { return id_; }
    const char *protocolName() const override;
    AccessOutcome read(Addr addr) override;
    AccessOutcome write(Addr addr, Word value) override;
    AccessOutcome flush(Addr addr, bool keep_copy) override;

    // Snooper interface.
    MasterId snooperId() const override { return id_; }
    SnoopReply snoop(const BusRequest &req) override;
    void supplyLine(const BusRequest &req, std::span<Word> out) override;
    void commit(const BusRequest &req, bool others_ch) override;
    void performAbortPush(const BusRequest &req) override;

    // Inspection (tests, checker, explorer).
    const ProtocolTable &table() const { return table_; }
    const LineStore &store() const { return *store_; }
    std::size_t lineBytes() const { return lineBytes_; }
    ClientKind kind() const { return kind_; }

    /** Valid line holding `la`, or null (checker access). */
    const CacheLine *peekLine(LineAddr la) const
    { return store_->peek(la); }

    /** Visit every valid line (checker access). */
    void
    forEachValidLine(
        const std::function<void(const CacheLine &)> &fn) const
    {
        store_->forEachValidLine(fn);
    }
    CacheStats &stats() { return stats_; }
    const CacheStats &stats() const { return stats_; }

    /** Attach a coverage recorder (not owned; null detaches). */
    void setCoverage(TransitionCoverage *coverage)
    { coverage_ = coverage; }

    /** Current state of the line containing `addr` (I if absent). */
    State lineState(Addr addr) const;

  private:
    /** Dispatch one local event on the line's current state. */
    AccessOutcome dispatchLocal(LocalEvent ev, Addr addr, Word value,
                                int depth);

    /** Execute a chosen local action. */
    AccessOutcome executeLocal(const LocalAction &action, LocalEvent ev,
                               Addr addr, Word value, int depth);

    /** Evict (flushing if owned) to make room, and install `la`. */
    CacheLine &allocateFor(LineAddr la, AccessOutcome &outcome);

    /** Issue the victim's Flush per the table. */
    void evict(CacheLine &victim, AccessOutcome &outcome);

    /** Candidates of a cell filtered by this client's kind. */
    std::vector<LocalAction> kindFiltered(const LocalCell &cell) const;

    LineAddr lineOf(Addr addr) const { return addr / lineBytes_; }
    std::size_t wordIndexOf(Addr addr) const
    { return (addr % lineBytes_) / kWordBytes; }

    MasterId id_;
    Bus &bus_;
    const ProtocolTable &table_;
    std::unique_ptr<ActionChooser> chooser_;
    ClientKind kind_;
    bool discardNearReplacement_;
    std::size_t lineBytes_;
    std::unique_ptr<LineStore> store_;
    CacheStats stats_;
    TransitionCoverage *coverage_ = nullptr;
    std::string name_;

    /** Latched snoop decision between snoop() and commit(). */
    struct Pending
    {
        bool active = false;
        bool isPush = false;       ///< CH-only response to a push
        SnoopAction action;
        CacheLine *line = nullptr;
    };
    Pending pending_;
};

} // namespace fbsim

#endif // FBSIM_PROTOCOLS_SNOOPING_CACHE_H_
