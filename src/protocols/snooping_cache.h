/**
 * @file
 * Table-driven snooping cache controller.
 *
 * One controller class interprets any ProtocolTable - MOESI itself or
 * any of the paper's Tables 3-7 - with the choice points delegated to
 * an ActionChooser.  This is the design that makes section 3.4 literal:
 * a cache can be "MOESI preferred", "Berkeley", "random member of the
 * class", etc., purely by configuration, and mixed systems follow.
 *
 * The same class also implements the write-through cache of the paper
 * by restricting itself to the "*" alternatives of Tables 1/2 (its V
 * state is S); see ClientKind.
 */

#ifndef FBSIM_PROTOCOLS_SNOOPING_CACHE_H_
#define FBSIM_PROTOCOLS_SNOOPING_CACHE_H_

#include <memory>
#include <optional>
#include <string>

#include "bus/bus.h"
#include "cache/line_store.h"
#include "common/random.h"
#include "core/policy.h"
#include "core/protocol_table.h"
#include "protocols/bus_client.h"
#include "protocols/cache_stats.h"
#include "protocols/transition_coverage.h"

namespace fbsim {

/** Configuration of one snooping cache. */
struct SnoopingCacheConfig
{
    CacheGeometry geometry;
    ReplacementKind replacement = ReplacementKind::LRU;
    /** CopyBack or WriteThrough (NonCaching uses NonCachingMaster). */
    ClientKind kind = ClientKind::CopyBack;
    /** Seed for the replacement policy (Random). */
    std::uint64_t seed = 1;
    /**
     * Section 5.2 refinement: when a broadcast-written line is nearing
     * replacement, discard it instead of updating it (requires the
     * chosen table cell to offer an invalidate alternative).
     */
    bool discardNearReplacement = false;
};

/** A snooping cache: processor port + bus snooper. */
class SnoopingCache : public BusClient, public Snooper
{
  public:
    /**
     * @param id bus module id.
     * @param bus the shared bus (must outlive the cache).
     * @param table protocol definition (must outlive the cache).
     * @param chooser action selection strategy (owned).
     * @param config geometry etc.
     */
    SnoopingCache(MasterId id, Bus &bus, const ProtocolTable &table,
                  std::unique_ptr<ActionChooser> chooser,
                  const SnoopingCacheConfig &config);

    /**
     * Construct over an explicit line store (e.g. a SectorStore for
     * the section 5.1 sector-cache organization).  `line_bytes` is the
     * system line (transfer subsector) size.
     */
    SnoopingCache(MasterId id, Bus &bus, const ProtocolTable &table,
                  std::unique_ptr<ActionChooser> chooser,
                  std::unique_ptr<LineStore> store,
                  std::size_t line_bytes, ClientKind kind,
                  bool discard_near_replacement = false);

    // BusClient interface.
    MasterId clientId() const override { return id_; }
    const char *protocolName() const override;
    AccessOutcome read(Addr addr) override;
    AccessOutcome write(Addr addr, Word value) override;
    AccessOutcome flush(Addr addr, bool keep_copy) override;

    // Snooper interface.  A cache's snoop() is a pure function of its
    // held lines, so it opts into the bus's snoop filter and keeps the
    // filter's presence bitmask current via setLineState().
    MasterId snooperId() const override { return id_; }
    bool filterable() const override { return true; }
    bool holdsLine(LineAddr la) const override
    { return cachedPeek(la) != nullptr; }
    SnoopReply snoop(const BusRequest &req) override;
    void supplyLine(const BusRequest &req, std::span<Word> out) override;
    void commit(const BusRequest &req, bool others_ch) override;
    void performAbortPush(const BusRequest &req) override;
    void
    setSpecConflictLog(std::vector<SpecConflict> *log) override
    { specLog_ = log; }

    // Inspection (tests, checker, explorer).
    const ProtocolTable &table() const { return table_; }
    const LineStore &store() const { return *store_; }
    std::size_t lineBytes() const { return lineBytes_; }
    ClientKind kind() const { return kind_; }

    /** Valid line holding `la`, or null (checker access). */
    const CacheLine *peekLine(LineAddr la) const
    { return cachedPeek(la); }

    /** Visit every valid line (checker access). */
    void
    forEachValidLine(
        const std::function<void(const CacheLine &)> &fn) const
    {
        store_->forEachValidLine(fn);
    }
    CacheStats &stats() { return stats_; }
    const CacheStats &stats() const { return stats_; }

    /** Attach a coverage recorder (not owned; null detaches). */
    void setCoverage(TransitionCoverage *coverage)
    {
        coverage_ = coverage;
        updateFastPath();
    }

    /**
     * Graceful degradation: flush every owned line to memory (via the
     * table's legal Flush actions), invalidate all copies, and bypass
     * the cache from then on - reads and writes go straight to the bus
     * like a non-caching master's, so the processor keeps running
     * coherently, just slower.  Called by the system layer when this
     * cache trips the livelock watchdog or fails a data-integrity
     * check.  Returns the bus traffic of the flush sweep; if a flush
     * push itself fails to converge the line is force-invalidated with
     * a warning (loud data loss beats silent corruption).
     */
    AccessOutcome quarantine();
    bool quarantined() const { return quarantined_; }

    /**
     * Hot-swap rejoin, the inverse of quarantine(): the paper's
     * compatibility argument (section 3.4) makes a cache whose every
     * line is in state I trivially compatible with any running bus, so
     * a quarantined cache may resume service at any time by ensuring
     * exactly that.  Invalidates any residual copies to I (keeping the
     * bus's snoop-filter presence bitmask exact), drops latched snoop
     * state, and clears the bypass flag; the next accesses behave as
     * cold I-state misses.  Returns false when not quarantined.  The
     * system layer (System::reintegrate) re-registers the cache with
     * the checker oracle and un-suspends its bus snooping around this.
     */
    bool reintegrate();

    /**
     * Fault-degraded mode (set by the system layer when an injector is
     * attached): a snooped bus event with no table cell for the line's
     * state - reachable only after a fault has already driven the
     * system into states the protocol never generates, e.g. divergent
     * double ownership from a muted invalidate - is ignored like a
     * missed address cycle (no response, no transition) and counted,
     * instead of panicking.  The checker reports the divergence.
     */
    void setFaultTolerant(bool on) { faultTolerant_ = on; }

    /**
     * Fault injection: flip one random bit in one random valid line's
     * data (victim chosen via `rng`).  Returns the corrupted line's
     * address, or nullopt if the cache holds no valid line.  Does NOT
     * count the injection - the caller owns the FaultStats.
     */
    std::optional<LineAddr> corruptRandomBit(Rng &rng);

    /** Current state of the line containing `addr` (I if absent).
     *  Answered from the store's packed tag/state arrays: the timed
     *  engine classifies every reference through here, so the probe
     *  must not touch CacheLine objects. */
    State lineState(Addr addr) const
    {
        LineAddr la = lineOf(addr);
        return plain_ ? plain_->tags().stateOf(la)
                      : store_->stateOf(la);
    }

    /** True when tryLocalRead/tryLocalWrite may be used: the
     *  devirtualized hit path is armed (deterministic chooser, plain
     *  store, no coverage recorder, not quarantined). */
    bool fastPathEnabled() const { return fastLocal_; }

    /**
     * Drain-path accesses for the timed engine: classification and
     * execution fused into one tag probe.  A pure local hit executes
     * with exactly read()/write() semantics and stats and returns
     * true; anything else (miss, bus-bound cell, conditional
     * transition) returns false having changed nothing, and the
     * caller routes the reference through the generic path.  A false
     * return coincides with wouldUseBus() for every table in the
     * suite, because the pure hit plans cover exactly the bus-free
     * cells.  Callers must check fastPathEnabled() first.
     */
    bool
    tryLocalRead(Addr addr, Word &out)
    {
        TagStore &tags = plain_->tags();
        CacheLine *l = tags.find(lineOf(addr));
        if (l == nullptr)
            return false;
        HitPlan &p = readHit_[static_cast<int>(l->state)];
        if (!p.filled)
            fillHitPlan(p, false, l->state);
        if (!p.pure)
            return false;
        ++stats_.reads;
        ++stats_.readHits;
        out = l->data[wordIndexOf(addr)];
        tags.touch(*l);
        return true;
    }

    /** Write counterpart of tryLocalRead() (pure hits: M stays M,
     *  E->M - valid-to-valid, so no presence update is due). */
    bool
    tryLocalWrite(Addr addr, Word value)
    {
        TagStore &tags = plain_->tags();
        CacheLine *l = tags.find(lineOf(addr));
        if (l == nullptr)
            return false;
        HitPlan &p = writeHit_[static_cast<int>(l->state)];
        if (!p.filled)
            fillHitPlan(p, true, l->state);
        if (!p.pure)
            return false;
        ++stats_.writes;
        ++stats_.writeHits;
        l->data[wordIndexOf(addr)] = value;
        if (p.next != l->state)
            tags.setState(*l, p.next);
        tags.touch(*l);
        return true;
    }

    /** Section 5.2 near-replacement discard refinement enabled?  Such
     *  a cache's snoop commits depend on replacement recency, which
     *  speculation perturbs, so the engine excludes it. */
    bool discardsNearReplacement() const
    { return discardNearReplacement_; }

    /**
     * True when the engine may run this cache speculatively: the
     * devirtualized hit path is armed, snoop behaviour is independent
     * of replacement recency (no near-replacement discard), and the
     * replacement policy's touch is undoable (Noop, or the stamp
     * table + clock which rollback restores exactly; Custom policies
     * like PLRU mutate opaque state).
     */
    bool
    specEligible() const
    {
        return fastLocal_ && !discardNearReplacement_ &&
               plain_ != nullptr &&
               plain_->tags().touchKind() !=
                   ReplacementPolicy::TouchKind::Custom;
    }

    /**
     * Speculative counterparts of tryLocalRead/tryLocalWrite: same
     * classification, same execution, plus one undo-log entry so the
     * access can be rolled back (specRollbackTo) or made permanent
     * (specDropCommitted).  Entries are strictly one per successful
     * call, in call order, so the engine addresses them by count
     * alone.  Hit counters are NOT bumped here - the engine batches
     * them through specCountHits() once per drained run.  Callers must
     * check specEligible() first.
     */
    bool
    specLocalRead(Addr addr, Word &out)
    {
        TagStore &tags = plain_->tags();
        CacheLine *l = tags.find(lineOf(addr));
        if (l == nullptr)
            return false;
        HitPlan &p = readHit_[static_cast<int>(l->state)];
        if (!p.filled)
            fillHitPlan(p, false, l->state);
        if (!p.pure)
            return false;
        out = l->data[wordIndexOf(addr)];
        SpecUndo &u = specUndo_.emplace_back();
        u.line = l;
        u.write = false;
        if (specStamp_) {
            u.stamp = tags.stampOf(*l);
            tags.touch(*l);
        }
        return true;
    }

    /** Write counterpart of specLocalRead(). */
    bool
    specLocalWrite(Addr addr, Word value)
    {
        TagStore &tags = plain_->tags();
        CacheLine *l = tags.find(lineOf(addr));
        if (l == nullptr)
            return false;
        HitPlan &p = writeHit_[static_cast<int>(l->state)];
        if (!p.filled)
            fillHitPlan(p, true, l->state);
        if (!p.pure)
            return false;
        std::size_t w = wordIndexOf(addr);
        SpecUndo &u = specUndo_.emplace_back();
        u.line = l;
        u.write = true;
        u.wordIdx = static_cast<std::uint32_t>(w);
        u.prevWord = l->data[w];
        u.prevState = l->state;
        if (specStamp_)
            u.stamp = tags.stampOf(*l);
        l->data[w] = value;
        if (p.next != l->state)
            tags.setState(*l, p.next);
        if (specStamp_)
            tags.touch(*l);
        return true;
    }

    /**
     * Bulk stats for a drained run of speculated hits.  specLocalRead
     * and specLocalWrite leave the hit counters alone so the drain
     * loop pays no per-reference increments; the engine adds the run's
     * totals here once per drain.  specRollbackTo still recounts per
     * popped entry, which stays consistent because the bulk add
     * covered every successful call.
     */
    void
    specCountHits(std::uint64_t reads, std::uint64_t writes)
    {
        stats_.reads += reads;
        stats_.readHits += reads;
        stats_.writes += writes;
        stats_.writeHits += writes;
    }

    /**
     * Roll back the newest `count` speculated accesses, newest first:
     * restore the written word, consistency state and replacement
     * stamp, rewind the touch clock, and recount stats.  After the
     * call a replay of the same accesses reproduces byte-identical
     * cache state (data, states, stamps, clock).
     */
    void specRollbackTo(std::uint64_t count);

    /**
     * Make the oldest `count` outstanding speculated accesses
     * permanent (drop their undo entries).  Called at each
     * serialization point for the committed prefix.
     */
    void specDropCommitted(std::uint64_t count);

  private:
    /** Dispatch one local event on the line's current state. */
    AccessOutcome dispatchLocal(LocalEvent ev, Addr addr, Word value,
                                int depth);

    /** Execute a chosen local action on `line` (the resident line for
     *  `addr`, or null when the address misses). */
    AccessOutcome executeLocal(const LocalAction &action, LocalEvent ev,
                               Addr addr, Word value, int depth,
                               CacheLine *line);

    /** Evict (flushing if owned) to make room, and install `la`.
     *  Null if a victim's writeback failed to converge (fault
     *  injection): the victim keeps its state and the access fails. */
    CacheLine *allocateFor(LineAddr la, AccessOutcome &outcome);

    /** Issue the victim's Flush per the table.  False if its push did
     *  not converge (the victim keeps its state and data). */
    bool evict(CacheLine &victim, AccessOutcome &outcome);

    /** Fault-degraded handling of a snooped event with no table cell:
     *  count it, warn once, and respond as if the address cycle was
     *  missed (empty reply, no latched action). */
    SnoopReply ignoredIllegalSnoop(State s, BusEvent ev, LineAddr la);

    /** Cache-bypass accesses used while quarantined (the non-caching
     *  master's transaction shapes). */
    AccessOutcome bypassRead(Addr addr);
    AccessOutcome bypassWrite(Addr addr, Word value);

    /**
     * Every consistency-state change funnels through here so the
     * bus's snoop-filter presence bitmask tracks valid<->invalid
     * transitions exactly.
     */
    void setLineState(CacheLine &line, State next);

    /**
     * Candidates of a cell filtered by this client's kind.  Returns a
     * reference to a per-cache scratch vector (valid until the next
     * call; callers copy their chosen action before any recursion).
     */
    const std::vector<LocalAction> &kindFiltered(const LocalCell &cell);

    /**
     * Memoized action resolution.  With a deterministic chooser the
     * resolved action is a pure function of (state, event) - the
     * table, kind and policy are fixed at construction - so the first
     * resolution of each pair is cached and the hot path skips the
     * kind filter, table walk and virtual chooser dispatch.  Stateful
     * choosers (random action selection) disable memoization.
     */
    struct LocalMemo
    {
        bool filled = false;
        bool empty = false;    ///< "--" cell: no legal action
        LocalAction action;
    };
    struct SnoopMemo
    {
        bool filled = false;
        bool empty = false;    ///< no cell; tolerated under faults
        SnoopAction action;
        /** Invalidate alternative for the section 5.2 near-replacement
         *  discard, if the cell offers one (points into the table). */
        const SnoopAction *discardAlt = nullptr;
    };
    void fillLocalMemo(LocalMemo &m, State s, LocalEvent ev);

    // True when a snooped state change to `ns` is invisible to an
    // outstanding run of speculated read hits: the line stays valid,
    // data is untouched by the caller, and the table still serves a
    // pure (stateless, busless) read hit from `ns`.
    bool readTransparent(State ns);
    void fillSnoopMemo(SnoopMemo &m, State s, BusEvent ev);

    /**
     * Pre-resolved hit plan for the devirtualized fast path: for a
     * (state, Read/Write) pair whose memoized action completes purely
     * locally with an unconditional valid next state, read()/write()
     * skip dispatch entirely - one packed-tag lookup, the data word,
     * a state-mirror update when the state moves (E->M) and the
     * replacement touch.  Anything else falls through to the generic
     * table-driven path.
     */
    struct HitPlan
    {
        bool filled = false;
        bool pure = false;
        State next = State::I;
    };
    void fillHitPlan(HitPlan &p, bool is_write, State s);
    /** Recompute fastLocal_ from chooser/store/coverage/quarantine. */
    void updateFastPath();

    LocalMemo &localMemoFor(State s, LocalEvent ev)
    {
        LocalMemo &m =
            localMemo_[static_cast<int>(s)][static_cast<int>(ev)];
        if (!m.filled)
            fillLocalMemo(m, s, ev);
        return m;
    }

    SnoopMemo &snoopMemoFor(State s, BusEvent ev)
    {
        SnoopMemo &m =
            snoopMemo_[static_cast<int>(s)][static_cast<int>(ev)];
        if (!m.filled)
            fillSnoopMemo(m, s, ev);
        return m;
    }

    /**
     * Line-store lookups funnel through a one-entry pointer cache:
     * one access probes the same line several times (hit check,
     * dispatch, execute; snoop then commit), and every probe through
     * the LineStore interface is a virtual call.  Line storage is
     * stable (both stores size their arrays at construction), and the
     * valid + tag revalidation keeps a recycled frame from lying.
     */
    CacheLine *cachedFind(LineAddr la)
    {
        CacheLine *l = lastLine_;
        if (l && l->valid() && l->addr == la)
            return l;
        l = store_->find(la);
        if (l)
            lastLine_ = l;
        return l;
    }

    const CacheLine *cachedPeek(LineAddr la) const
    {
        const CacheLine *l = lastLine_;
        if (l && l->valid() && l->addr == la)
            return l;
        l = store_->peek(la);
        if (l)
            lastLine_ = const_cast<CacheLine *>(l);
        return l;
    }

    // lineBytes_ is a power of two (the store's geometry validates
    // it), so per-access address splitting is shift/mask.
    LineAddr lineOf(Addr addr) const { return addr >> lineShift_; }
    std::size_t wordIndexOf(Addr addr) const
    { return (addr & (lineBytes_ - 1)) / kWordBytes; }

    MasterId id_;
    Bus &bus_;
    const ProtocolTable &table_;
    std::unique_ptr<ActionChooser> chooser_;
    ClientKind kind_;
    bool discardNearReplacement_;
    std::size_t lineBytes_;
    unsigned lineShift_ = 0;
    std::unique_ptr<LineStore> store_;
    /** store_ downcast when it is the conventional store; the hot hit
     *  path then bypasses the LineStore virtual interface. */
    PlainLineStore *plain_ = nullptr;
    /** True when the devirtualized hit path may run: deterministic
     *  chooser (plans are pure), plain store, no coverage recorder,
     *  not quarantined. */
    bool fastLocal_ = false;
    CacheStats stats_;
    bool quarantined_ = false;
    bool faultTolerant_ = false;
    bool warnedIllegalSnoop_ = false;   ///< one warning per cache
    TransitionCoverage *coverage_ = nullptr;
    std::string name_;
    std::vector<LocalAction> candScratch_;   ///< kindFiltered() reuse
    bool memoize_ = false;   ///< chooser_->deterministic()
    LocalMemo localMemo_[kNumStates][kNumLocalEvents];
    SnoopMemo snoopMemo_[kNumStates][kNumBusEvents];
    HitPlan readHit_[kNumStates];
    HitPlan writeHit_[kNumStates];
    mutable CacheLine *lastLine_ = nullptr;   ///< cachedFind/cachedPeek

    /** Latched snoop decision between snoop() and commit(). */
    struct Pending
    {
        bool active = false;
        bool isPush = false;       ///< CH-only response to a push
        SnoopAction action;
        CacheLine *line = nullptr;
    };
    Pending pending_;

    /**
     * One speculated access pending commit or rollback.  Entries are
     * appended in increasing `idx` order; rollback pops a suffix,
     * commit advances a head cursor past a prefix, so the live window
     * is contiguous.  Line pointers stay exact across the window: no
     * frame is installed or evicted while speculation is outstanding
     * (local hits never allocate, snooped transactions never install,
     * and a cache executes a bus access only with an empty window).
     */
    struct SpecUndo
    {
        CacheLine *line = nullptr;
        std::uint64_t stamp = 0;   ///< pre-touch replacement stamp
        Word prevWord = 0;         ///< writes: overwritten word
        std::uint32_t wordIdx = 0; ///< writes: word within the line
        bool write = false;
        State prevState = State::I; ///< writes: pre-access state
    };
    std::vector<SpecUndo> specUndo_;
    std::size_t specUndoHead_ = 0;
    /** Replacement touches stamp (vs Noop), latched at construction. */
    bool specStamp_ = false;
    /** Speculation-conflict sink (Bus fan-out; not owned). */
    std::vector<SpecConflict> *specLog_ = nullptr;
};

} // namespace fbsim

#endif // FBSIM_PROTOCOLS_SNOOPING_CACHE_H_
