/**
 * @file
 * Protocol and chooser factories: names to tables and strategies.
 */

#ifndef FBSIM_PROTOCOLS_FACTORY_H_
#define FBSIM_PROTOCOLS_FACTORY_H_

#include <memory>
#include <optional>
#include <string_view>

#include "core/policy.h"
#include "core/protocol_table.h"

namespace fbsim {

/** The protocols shipped with fbsim (paper Tables 1-7). */
enum class ProtocolKind {
    Moesi,      ///< the full class, Tables 1 and 2
    Berkeley,   ///< Table 3
    Dragon,     ///< Table 4
    WriteOnce,  ///< Table 5
    Illinois,   ///< Table 6
    Firefly,    ///< Table 7
};

/** All protocol kinds, in paper order. */
inline constexpr ProtocolKind kAllProtocolKinds[] = {
    ProtocolKind::Moesi,    ProtocolKind::Berkeley,
    ProtocolKind::Dragon,   ProtocolKind::WriteOnce,
    ProtocolKind::Illinois, ProtocolKind::Firefly,
};

/** Table for a protocol kind. */
const ProtocolTable &protocolTable(ProtocolKind kind);

/** Display name ("MOESI", "Berkeley", ...). */
std::string_view protocolKindName(ProtocolKind kind);

/** Parse a display name (case-insensitive); nullopt if unknown. */
std::optional<ProtocolKind> protocolKindFromName(std::string_view name);

/** Chooser strategies for cache construction. */
enum class ChooserKind {
    Preferred,  ///< the paper's preferred (first) alternatives
    Policy,     ///< steered by a MoesiPolicy
    Random,     ///< uniformly random legal action (section 3.4)
};

/** Build a chooser.  `policy` is used by Policy, `seed` by Random. */
std::unique_ptr<ActionChooser>
makeChooser(ChooserKind kind, const MoesiPolicy &policy = {},
            std::uint64_t seed = 1);

} // namespace fbsim

#endif // FBSIM_PROTOCOLS_FACTORY_H_
