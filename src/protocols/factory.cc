#include "protocols/factory.h"

#include <cctype>
#include <string>

#include "common/logging.h"

namespace fbsim {

const ProtocolTable &
protocolTable(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::Moesi:     return moesiTable();
      case ProtocolKind::Berkeley:  return berkeleyTable();
      case ProtocolKind::Dragon:    return dragonTable();
      case ProtocolKind::WriteOnce: return writeOnceTable();
      case ProtocolKind::Illinois:  return illinoisTable();
      case ProtocolKind::Firefly:   return fireflyTable();
    }
    fbsim_panic("unknown protocol kind");
}

std::string_view
protocolKindName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::Moesi:     return "MOESI";
      case ProtocolKind::Berkeley:  return "Berkeley";
      case ProtocolKind::Dragon:    return "Dragon";
      case ProtocolKind::WriteOnce: return "Write-Once";
      case ProtocolKind::Illinois:  return "Illinois";
      case ProtocolKind::Firefly:   return "Firefly";
    }
    return "?";
}

std::optional<ProtocolKind>
protocolKindFromName(std::string_view name)
{
    std::string lower;
    for (char c : name) {
        if (c == '-' || c == '_' || c == ' ')
            continue;
        lower.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    if (lower == "moesi")
        return ProtocolKind::Moesi;
    if (lower == "berkeley")
        return ProtocolKind::Berkeley;
    if (lower == "dragon")
        return ProtocolKind::Dragon;
    if (lower == "writeonce")
        return ProtocolKind::WriteOnce;
    if (lower == "illinois")
        return ProtocolKind::Illinois;
    if (lower == "firefly")
        return ProtocolKind::Firefly;
    return std::nullopt;
}

std::unique_ptr<ActionChooser>
makeChooser(ChooserKind kind, const MoesiPolicy &policy,
            std::uint64_t seed)
{
    switch (kind) {
      case ChooserKind::Preferred:
        return std::make_unique<PreferredChooser>();
      case ChooserKind::Policy:
        return std::make_unique<PolicyChooser>(policy);
      case ChooserKind::Random:
        return std::make_unique<RandomChooser>(seed);
    }
    fbsim_panic("unknown chooser kind");
}

} // namespace fbsim
