/**
 * @file
 * Transition coverage recording.
 *
 * A TransitionCoverage attached to a SnoopingCache records every
 * (state, event) cell the engine actually exercises, locally and on
 * snoops.  The coverage tests use it to prove that the table-driven
 * engines reach every non-empty cell of every paper table - i.e. that
 * the reproduction executes the whole protocol definition, not just
 * its happy path.
 */

#ifndef FBSIM_PROTOCOLS_TRANSITION_COVERAGE_H_
#define FBSIM_PROTOCOLS_TRANSITION_COVERAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/protocol_table.h"

namespace fbsim {

/** Records which table cells a cache engine has executed. */
class TransitionCoverage
{
  public:
    /** Note a local event dispatched from `from`, ending in `to`. */
    void noteLocal(State from, LocalEvent ev, State to);

    /** Note a snooped bus event on a line in `from`, ending in `to`
     *  (for BS responses, `to` is the post-push state). */
    void noteSnoop(State from, BusEvent ev, State to);

    /** Times the (from, ev) local cell was executed. */
    std::uint64_t localCount(State from, LocalEvent ev) const;

    /** Times the (from, ev) snoop cell was executed. */
    std::uint64_t snoopCount(State from, BusEvent ev) const;

    /**
     * Cells of `table` that are non-empty but never executed.
     * @param include_snoop_invalid also demand coverage of the
     *        (trivial) I-row snoop cells.
     */
    std::vector<std::string>
    uncoveredCells(const ProtocolTable &table,
                   bool include_snoop_invalid = false) const;

    /** Merge another recorder's counts into this one. */
    void merge(const TransitionCoverage &other);

  private:
    std::map<std::pair<int, int>, std::uint64_t> local_;
    std::map<std::pair<int, int>, std::uint64_t> snoop_;
};

} // namespace fbsim

#endif // FBSIM_PROTOCOLS_TRANSITION_COVERAGE_H_
