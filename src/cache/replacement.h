/**
 * @file
 * Replacement policies for set-associative tag stores.
 *
 * Section 5.2 of the paper suggests consulting replacement status when
 * deciding whether to keep a remotely-written line (update if recently
 * used, discard if near replacement); the policy interface exposes the
 * hook (isNearReplacement) that protocols/ uses to implement that
 * refinement.
 */

#ifndef FBSIM_CACHE_REPLACEMENT_H_
#define FBSIM_CACHE_REPLACEMENT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

namespace fbsim {

/** Available replacement algorithms. */
enum class ReplacementKind { LRU, FIFO, Random, PLRU };

/** Printable name of a replacement algorithm. */
std::string_view replacementKindName(ReplacementKind kind);

/**
 * Replacement state for one tag store.  Policies see accesses and fills
 * per (set, way) and nominate victims.  Way validity is handled by the
 * tag store (invalid ways are always preferred as victims); policies
 * only rank valid ways.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Algorithm name. */
    virtual std::string_view name() const = 0;

    /**
     * Hot-path contract of onAccess(), so a tag store can skip the
     * per-hit virtual dispatch: Noop = onAccess does nothing (FIFO,
     * Random), Stamp = onAccess writes a fresh clock tick into slot
     * set*ways+way of stampTable() (LRU), Custom = anything else
     * (PLRU) - the caller must dispatch onAccess() virtually.
     */
    enum class TouchKind { Noop, Stamp, Custom };
    virtual TouchKind touchKind() const { return TouchKind::Custom; }

    /** Flat per-frame stamp slots (TouchKind::Stamp only; else null). */
    virtual std::uint64_t *stampTable() { return nullptr; }

    /** The stamp clock (TouchKind::Stamp only; else null). */
    virtual std::uint64_t *stampClock() { return nullptr; }

    /** A hit touched (set, way). */
    virtual void onAccess(std::size_t set, std::size_t way) = 0;

    /** A fill placed a new line into (set, way). */
    virtual void onFill(std::size_t set, std::size_t way) = 0;

    /** Nominate a victim way in the set (all ways valid). */
    virtual std::size_t victim(std::size_t set) = 0;

    /**
     * True when the way ranks in the bottom half of the set's
     * replacement order - the paper's "nearing time for replacement"
     * test for discarding instead of updating a broadcast-written line.
     */
    virtual bool isNearReplacement(std::size_t set, std::size_t way) = 0;
};

/** Construct a policy instance for a (sets x ways) tag store. */
std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(ReplacementKind kind, std::size_t sets,
                      std::size_t ways, std::uint64_t seed);

} // namespace fbsim

#endif // FBSIM_CACHE_REPLACEMENT_H_
