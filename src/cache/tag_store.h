/**
 * @file
 * Set-associative tag/data store with MOESI per-line state.
 *
 * The tag store is purely mechanical: lookup, victim selection and
 * fills.  All protocol decisions (what state to enter, when to push a
 * victim) belong to the cache controller in protocols/.
 *
 * Layout is data-oriented: alongside the CacheLine objects (which own
 * the data words) the store keeps struct-of-arrays metadata - packed
 * tags, packed u8 states and per-frame epochs - so the per-access scan
 * touches a few contiguous words instead of striding over CacheLine
 * objects.  The epoch counter makes bulk invalidation (quarantine
 * reintegration) O(1): bumping it invalidates every frame at once, and
 * stale frames are repaired lazily the next time victimFor() meets
 * them.  All consistency-state changes must go through setState() /
 * install() so the packed mirrors never diverge from CacheLine::state.
 */

#ifndef FBSIM_CACHE_TAG_STORE_H_
#define FBSIM_CACHE_TAG_STORE_H_

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "cache/geometry.h"
#include "cache/replacement.h"
#include "common/types.h"
#include "core/state.h"

namespace fbsim {

/** One cache line: tag, consistency state and data words. */
struct CacheLine
{
    LineAddr addr = 0;        ///< full line address (tag + index)
    State state = State::I;
    std::vector<Word> data;   ///< wordsPerLine() words once allocated

    bool valid() const { return isValid(state); }
};

/** A set-associative array of CacheLine with a replacement policy. */
class TagStore
{
  public:
    /** @param geometry validated cache shape.
     *  @param repl replacement algorithm.
     *  @param seed randomness for the Random policy. */
    TagStore(const CacheGeometry &geometry, ReplacementKind repl,
             std::uint64_t seed);

    TagStore(const TagStore &) = delete;
    TagStore &operator=(const TagStore &) = delete;

    const CacheGeometry &geometry() const { return geom_; }

    /** Find the line holding `la` in any valid state; null on miss. */
    CacheLine *
    find(LineAddr la)
    {
        // Last-hit shortcut: lookups cluster heavily on the line just
        // touched (snoop + commit of one transaction, read-then-write
        // sequences).  lines_ never reallocates; the shortcut can only
        // hold a frame that was current when cached, and setState()
        // flips CacheLine::state to I before a frame ever goes stale
        // through it, while bulkInvalidate() drops the shortcut
        // entirely - so the valid + tag check cannot lie.
        if (lastHit_ && lastHit_->valid() && lastHit_->addr == la)
            return lastHit_;
        std::size_t base = geom_.setOf(la) * geom_.assoc;
        for (std::size_t w = 0; w < geom_.assoc; ++w) {
            if (tags_[base + w] == la && epochOf_[base + w] == epoch_) {
                lastHit_ = &lines_[base + w];
                return lastHit_;
            }
        }
        return nullptr;
    }

    /** Const lookup for checkers/inspection; null on miss. */
    const CacheLine *
    peek(LineAddr la) const
    {
        return const_cast<TagStore *>(this)->find(la);
    }

    /**
     * Consistency state of the line holding `la` (I when absent).
     * Reads only the packed tag/state arrays - no CacheLine object is
     * touched - so the timed engine's would-use-bus classification is
     * a couple of contiguous loads.
     */
    State
    stateOf(LineAddr la) const
    {
        std::size_t base = geom_.setOf(la) * geom_.assoc;
        for (std::size_t w = 0; w < geom_.assoc; ++w) {
            if (tags_[base + w] == la && epochOf_[base + w] == epoch_)
                return static_cast<State>(states_[base + w]);
        }
        return State::I;
    }

    /**
     * Line that a fill of `la` would use: an invalid way if the set has
     * one, otherwise the replacement victim (which the controller must
     * flush first if it is owned).  A frame invalidated wholesale by
     * bulkInvalidate() is repaired (state forced to I) before being
     * returned, so the caller may trust CacheLine::valid() on the
     * result.  Never returns a valid line holding a different address
     * than the victim's own.
     */
    CacheLine &victimFor(LineAddr la);

    /**
     * Install `la` into `line` (obtained from victimFor): resets tag,
     * state and data storage and informs the replacement policy.
     */
    void install(CacheLine &line, LineAddr la, State s);

    /**
     * Change a resident line's consistency state, keeping the packed
     * tag/state mirrors in sync.  This is the only legal way to mutate
     * CacheLine::state outside install().
     */
    void
    setState(CacheLine &line, State next)
    {
        std::size_t idx = static_cast<std::size_t>(&line - lines_.data());
        bool was = frameValid(idx);
        bool now = isValid(next);
        line.state = next;
        states_[idx] = static_cast<std::uint8_t>(next);
        epochOf_[idx] = epoch_;
        tags_[idx] = now ? line.addr : kNoTag;
        if (now != was)
            validCount_ += now ? 1 : -static_cast<std::ptrdiff_t>(1);
    }

    /**
     * Invalidate every line at once, in O(1): the epoch bump makes all
     * frames stale without walking them.  Stale frames keep their old
     * CacheLine::state until victimFor() repairs them, so callers must
     * only observe lines through the store's epoch-aware API and must
     * drop any raw CacheLine pointers they cached before the call.
     */
    void bulkInvalidate();

    /** Record a hit for replacement bookkeeping.  Dispatched through
     *  the policy's TouchKind so the per-hit path of the stamp
     *  policies (LRU: one store; FIFO/Random: nothing) pays no
     *  virtual call. */
    void
    touch(const CacheLine &line)
    {
        if (touchKind_ == ReplacementPolicy::TouchKind::Noop)
            return;
        std::size_t idx =
            static_cast<std::size_t>(&line - lines_.data());
        if (touchKind_ == ReplacementPolicy::TouchKind::Stamp) {
            touchStamps_[idx] = ++*touchClock_;
            return;
        }
        repl_->onAccess(idx / geom_.assoc, idx % geom_.assoc);
    }

    /** Near-replacement test for the section 5.2 refinement. */
    bool nearReplacement(const CacheLine &line) const;

    /** The replacement policy's touch dispatch kind (immutable). */
    ReplacementPolicy::TouchKind touchKind() const { return touchKind_; }

    /**
     * Replacement stamp of a resident line (Stamp policies only).
     * Speculative execution snapshots this before a touch so rollback
     * can restore the exact recency order.
     */
    std::uint64_t
    stampOf(const CacheLine &line) const
    {
        std::size_t idx =
            static_cast<std::size_t>(&line - lines_.data());
        return touchStamps_[idx];
    }

    /** Restore a previously snapshotted replacement stamp. */
    void
    restoreStamp(const CacheLine &line, std::uint64_t stamp)
    {
        std::size_t idx =
            static_cast<std::size_t>(&line - lines_.data());
        touchStamps_[idx] = stamp;
    }

    /**
     * Undo the clock advance of one touch() (Stamp policies only).
     * Rolling back a speculated access restores the touched line's
     * stamp via restoreStamp() and rewinds the clock here, so a replay
     * of the same accesses re-issues byte-identical stamps.
     */
    void undoTouchClock() { --*touchClock_; }

    /** Visit every valid line (for checkers and statistics). */
    void forEachValidLine(
        const std::function<void(const CacheLine &)> &fn) const;

    /** Count of currently valid lines. */
    std::size_t validLineCount() const
    { return static_cast<std::size_t>(validCount_); }

    /** Bulk-invalidation epoch (tests: proves reintegration is O(1)). */
    std::uint32_t epoch() const { return epoch_; }

  private:
    /** Packed-tag sentinel: frame holds no valid line. */
    static constexpr LineAddr kNoTag = ~LineAddr{0};

    bool
    frameValid(std::size_t idx) const
    {
        return tags_[idx] != kNoTag && epochOf_[idx] == epoch_;
    }

    std::size_t wayOf(const CacheLine &line) const;

    CacheGeometry geom_;
    std::unique_ptr<ReplacementPolicy> repl_;
    /** touch() fast-path dispatch, latched from repl_ at construction
     *  (a policy's TouchKind and stamp storage are immutable). */
    ReplacementPolicy::TouchKind touchKind_ =
        ReplacementPolicy::TouchKind::Custom;
    std::uint64_t *touchStamps_ = nullptr;
    std::uint64_t *touchClock_ = nullptr;
    std::vector<CacheLine> lines_;   // sets x ways, row-major
    /** SoA metadata, parallel to lines_: packed tag (kNoTag when the
     *  frame is invalid), packed u8 state, and the epoch the entry
     *  belongs to.  A frame is valid iff its tag is real AND its epoch
     *  is current. */
    std::vector<LineAddr> tags_;
    std::vector<std::uint8_t> states_;
    std::vector<std::uint32_t> epochOf_;
    std::uint32_t epoch_ = 0;
    std::ptrdiff_t validCount_ = 0;
    /** Last line find()/peek() returned; revalidated on every use. */
    mutable CacheLine *lastHit_ = nullptr;
};

} // namespace fbsim

#endif // FBSIM_CACHE_TAG_STORE_H_
