/**
 * @file
 * Set-associative tag/data store with MOESI per-line state.
 *
 * The tag store is purely mechanical: lookup, victim selection and
 * fills.  All protocol decisions (what state to enter, when to push a
 * victim) belong to the cache controller in protocols/.
 */

#ifndef FBSIM_CACHE_TAG_STORE_H_
#define FBSIM_CACHE_TAG_STORE_H_

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "cache/geometry.h"
#include "cache/replacement.h"
#include "common/types.h"
#include "core/state.h"

namespace fbsim {

/** One cache line: tag, consistency state and data words. */
struct CacheLine
{
    LineAddr addr = 0;        ///< full line address (tag + index)
    State state = State::I;
    std::vector<Word> data;   ///< wordsPerLine() words once allocated

    bool valid() const { return isValid(state); }
};

/** A set-associative array of CacheLine with a replacement policy. */
class TagStore
{
  public:
    /** @param geometry validated cache shape.
     *  @param repl replacement algorithm.
     *  @param seed randomness for the Random policy. */
    TagStore(const CacheGeometry &geometry, ReplacementKind repl,
             std::uint64_t seed);

    TagStore(const TagStore &) = delete;
    TagStore &operator=(const TagStore &) = delete;

    const CacheGeometry &geometry() const { return geom_; }

    /** Find the line holding `la` in any valid state; null on miss. */
    CacheLine *find(LineAddr la);

    /** Const lookup for checkers/inspection; null on miss. */
    const CacheLine *peek(LineAddr la) const;

    /**
     * Line that a fill of `la` would use: an invalid way if the set has
     * one, otherwise the replacement victim (which the controller must
     * flush first if it is owned).  Never returns a valid line holding
     * a different address than the victim's own.
     */
    CacheLine &victimFor(LineAddr la);

    /**
     * Install `la` into `line` (obtained from victimFor): resets tag,
     * state and data storage and informs the replacement policy.
     */
    void install(CacheLine &line, LineAddr la, State s);

    /** Record a hit for replacement bookkeeping. */
    void touch(const CacheLine &line);

    /** Near-replacement test for the section 5.2 refinement. */
    bool nearReplacement(const CacheLine &line) const;

    /** Visit every valid line (for checkers and statistics). */
    void forEachValidLine(
        const std::function<void(const CacheLine &)> &fn) const;

    /** Count of currently valid lines. */
    std::size_t validLineCount() const;

  private:
    std::size_t wayOf(const CacheLine &line) const;

    CacheGeometry geom_;
    std::unique_ptr<ReplacementPolicy> repl_;
    std::vector<CacheLine> lines_;   // sets x ways, row-major
    /** Last line find()/peek() returned; revalidated on every use. */
    mutable CacheLine *lastHit_ = nullptr;
};

} // namespace fbsim

#endif // FBSIM_CACHE_TAG_STORE_H_
