#include "cache/tag_store.h"

#include <algorithm>

#include "common/logging.h"

namespace fbsim {

TagStore::TagStore(const CacheGeometry &geometry, ReplacementKind repl,
                   std::uint64_t seed)
    : geom_(geometry)
{
    geom_.validate();
    repl_ = makeReplacementPolicy(repl, geom_.numSets, geom_.assoc, seed);
    lines_.resize(geom_.numSets * geom_.assoc);
    tags_.assign(lines_.size(), kNoTag);
    states_.assign(lines_.size(),
                   static_cast<std::uint8_t>(State::I));
    epochOf_.assign(lines_.size(), 0);
    touchKind_ = repl_->touchKind();
    touchStamps_ = repl_->stampTable();
    touchClock_ = repl_->stampClock();
}

CacheLine &
TagStore::victimFor(LineAddr la)
{
    std::size_t base = geom_.setOf(la) * geom_.assoc;
    for (std::size_t w = 0; w < geom_.assoc; ++w) {
        std::size_t idx = base + w;
        if (frameValid(idx))
            continue;
        if (epochOf_[idx] != epoch_) {
            // Lazy repair of a bulk-invalidated frame: force the
            // object state to I so the caller's valid() test (and
            // install()'s assert) see the truth.
            lines_[idx].state = State::I;
            states_[idx] = static_cast<std::uint8_t>(State::I);
            tags_[idx] = kNoTag;
            epochOf_[idx] = epoch_;
        }
        return lines_[idx];
    }
    return lines_[base + repl_->victim(geom_.setOf(la))];
}

void
TagStore::install(CacheLine &line, LineAddr la, State s)
{
    std::size_t idx = static_cast<std::size_t>(&line - lines_.data());
    fbsim_assert(!frameValid(idx));
    fbsim_assert(!line.valid());
    line.addr = la;
    line.state = s;
    line.data.assign(geom_.wordsPerLine(), 0);
    states_[idx] = static_cast<std::uint8_t>(s);
    epochOf_[idx] = epoch_;
    tags_[idx] = isValid(s) ? la : kNoTag;
    if (isValid(s))
        ++validCount_;
    repl_->onFill(geom_.setOf(la), wayOf(line));
}

void
TagStore::bulkInvalidate()
{
    ++epoch_;
    if (epoch_ == 0) {
        // 2^32 bulk invalidations wrapped the epoch; hard-reset every
        // frame so a surviving stale entry cannot alias the new epoch.
        std::fill(tags_.begin(), tags_.end(), kNoTag);
        std::fill(epochOf_.begin(), epochOf_.end(), 0u);
        for (CacheLine &line : lines_)
            line.state = State::I;
    }
    validCount_ = 0;
    lastHit_ = nullptr;
}

bool
TagStore::nearReplacement(const CacheLine &line) const
{
    return repl_->isNearReplacement(geom_.setOf(line.addr), wayOf(line));
}

void
TagStore::forEachValidLine(
    const std::function<void(const CacheLine &)> &fn) const
{
    for (std::size_t idx = 0; idx < lines_.size(); ++idx) {
        if (frameValid(idx))
            fn(lines_[idx]);
    }
}

std::size_t
TagStore::wayOf(const CacheLine &line) const
{
    // idx == set * assoc + way by construction; recovering the way
    // with a multiply avoids a division by the runtime-valued assoc.
    std::size_t idx = static_cast<std::size_t>(&line - lines_.data());
    return idx - geom_.setOf(line.addr) * geom_.assoc;
}

} // namespace fbsim
