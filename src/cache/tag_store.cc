#include "cache/tag_store.h"

#include "common/logging.h"

namespace fbsim {

TagStore::TagStore(const CacheGeometry &geometry, ReplacementKind repl,
                   std::uint64_t seed)
    : geom_(geometry)
{
    geom_.validate();
    repl_ = makeReplacementPolicy(repl, geom_.numSets, geom_.assoc, seed);
    lines_.resize(geom_.numSets * geom_.assoc);
}

CacheLine *
TagStore::find(LineAddr la)
{
    // Last-hit shortcut: lookups cluster heavily on the line just
    // touched (snoop + commit of one transaction, read-then-write
    // sequences).  lines_ never reallocates, and the full tag + state
    // check below keeps the cached pointer from ever lying.
    if (lastHit_ && lastHit_->valid() && lastHit_->addr == la)
        return lastHit_;
    std::size_t set = geom_.setOf(la);
    for (std::size_t w = 0; w < geom_.assoc; ++w) {
        CacheLine &line = lines_[set * geom_.assoc + w];
        if (line.valid() && line.addr == la) {
            lastHit_ = &line;
            return &line;
        }
    }
    return nullptr;
}

const CacheLine *
TagStore::peek(LineAddr la) const
{
    if (lastHit_ && lastHit_->valid() && lastHit_->addr == la)
        return lastHit_;
    std::size_t set = geom_.setOf(la);
    for (std::size_t w = 0; w < geom_.assoc; ++w) {
        const CacheLine &line = lines_[set * geom_.assoc + w];
        if (line.valid() && line.addr == la) {
            lastHit_ = const_cast<CacheLine *>(&line);
            return &line;
        }
    }
    return nullptr;
}

CacheLine &
TagStore::victimFor(LineAddr la)
{
    std::size_t set = geom_.setOf(la);
    for (std::size_t w = 0; w < geom_.assoc; ++w) {
        CacheLine &line = lines_[set * geom_.assoc + w];
        if (!line.valid())
            return line;
    }
    return lines_[set * geom_.assoc + repl_->victim(set)];
}

void
TagStore::install(CacheLine &line, LineAddr la, State s)
{
    fbsim_assert(!line.valid());
    line.addr = la;
    line.state = s;
    line.data.assign(geom_.wordsPerLine(), 0);
    repl_->onFill(geom_.setOf(la), wayOf(line));
}

void
TagStore::touch(const CacheLine &line)
{
    repl_->onAccess(geom_.setOf(line.addr), wayOf(line));
}

bool
TagStore::nearReplacement(const CacheLine &line) const
{
    return repl_->isNearReplacement(geom_.setOf(line.addr), wayOf(line));
}

void
TagStore::forEachValidLine(
    const std::function<void(const CacheLine &)> &fn) const
{
    for (const CacheLine &line : lines_) {
        if (line.valid())
            fn(line);
    }
}

std::size_t
TagStore::validLineCount() const
{
    std::size_t n = 0;
    for (const CacheLine &line : lines_) {
        if (line.valid())
            ++n;
    }
    return n;
}

std::size_t
TagStore::wayOf(const CacheLine &line) const
{
    // idx == set * assoc + way by construction; recovering the way
    // with a multiply avoids a division by the runtime-valued assoc.
    std::size_t idx = static_cast<std::size_t>(&line - lines_.data());
    return idx - geom_.setOf(line.addr) * geom_.assoc;
}

} // namespace fbsim
