#include "cache/replacement.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace fbsim {

std::string_view
replacementKindName(ReplacementKind kind)
{
    switch (kind) {
      case ReplacementKind::LRU:    return "LRU";
      case ReplacementKind::FIFO:   return "FIFO";
      case ReplacementKind::Random: return "Random";
      case ReplacementKind::PLRU:   return "PLRU";
    }
    return "?";
}

namespace {

/**
 * Timestamp-based policy covering both LRU (stamps on access and fill)
 * and FIFO (stamps on fill only): the victim is the oldest stamp.
 */
class StampPolicy : public ReplacementPolicy
{
  public:
    StampPolicy(bool stamp_on_access, std::string_view name,
                std::size_t sets, std::size_t ways)
        : stampOnAccess_(stamp_on_access), name_(name), ways_(ways),
          stamps_(sets * ways, 0)
    {
    }

    std::string_view name() const override { return name_; }

    TouchKind
    touchKind() const override
    {
        return stampOnAccess_ ? TouchKind::Stamp : TouchKind::Noop;
    }

    std::uint64_t *stampTable() override { return stamps_.data(); }
    std::uint64_t *stampClock() override { return &clock_; }

    void
    onAccess(std::size_t set, std::size_t way) override
    {
        if (stampOnAccess_)
            stamps_[set * ways_ + way] = ++clock_;
    }

    void
    onFill(std::size_t set, std::size_t way) override
    {
        stamps_[set * ways_ + way] = ++clock_;
    }

    std::size_t
    victim(std::size_t set) override
    {
        std::size_t best = 0;
        std::uint64_t best_stamp = stamps_[set * ways_];
        for (std::size_t w = 1; w < ways_; ++w) {
            std::uint64_t st = stamps_[set * ways_ + w];
            if (st < best_stamp) {
                best_stamp = st;
                best = w;
            }
        }
        return best;
    }

    bool
    isNearReplacement(std::size_t set, std::size_t way) override
    {
        // Bottom half of the set by recency.
        std::size_t older = 0;
        std::uint64_t mine = stamps_[set * ways_ + way];
        for (std::size_t w = 0; w < ways_; ++w) {
            if (w != way && stamps_[set * ways_ + w] < mine)
                ++older;
        }
        return older < (ways_ + 1) / 2;
    }

  private:
    bool stampOnAccess_;
    std::string_view name_;
    std::size_t ways_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> stamps_;
};

/** Uniformly random victim. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(std::size_t ways, std::uint64_t seed)
        : ways_(ways), rng_(seed)
    {
    }

    std::string_view name() const override { return "Random"; }
    TouchKind touchKind() const override { return TouchKind::Noop; }
    void onAccess(std::size_t, std::size_t) override {}
    void onFill(std::size_t, std::size_t) override {}

    std::size_t victim(std::size_t) override { return rng_.below(ways_); }

    bool
    isNearReplacement(std::size_t, std::size_t) override
    {
        // No ordering information; split the difference.
        return rng_.chance(0.5);
    }

  private:
    std::size_t ways_;
    Rng rng_;
};

/** Tree pseudo-LRU over a power-of-two (rounded-up) way count. */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    TreePlruPolicy(std::size_t sets, std::size_t ways) : ways_(ways)
    {
        leaves_ = 1;
        while (leaves_ < ways_)
            leaves_ *= 2;
        bits_.assign(sets * leaves_, false);
    }

    std::string_view name() const override { return "PLRU"; }

    void
    onAccess(std::size_t set, std::size_t way) override
    {
        touch(set, way);
    }

    void
    onFill(std::size_t set, std::size_t way) override
    {
        touch(set, way);
    }

    std::size_t
    victim(std::size_t set) override
    {
        // Walk the tree following the "colder" direction; clamp to the
        // real way count when leaves were rounded up.
        std::size_t node = 1;
        while (node < leaves_) {
            // bit true = left child hot, so the victim is on the right.
            bool bit = bits_[set * leaves_ + node];
            node = node * 2 + (bit ? 1 : 0);
        }
        std::size_t way = node - leaves_;
        return std::min(way, ways_ - 1);
    }

    bool
    isNearReplacement(std::size_t set, std::size_t way) override
    {
        // The root bit points away from the most recently used half.
        if (ways_ < 2)
            return false;
        bool bit = bits_[set * leaves_ + 1];
        bool in_upper_half = way >= leaves_ / 2;
        // bit true means lower half is hot, so upper half is near
        // replacement.
        return bit ? in_upper_half : !in_upper_half;
    }

  private:
    void
    touch(std::size_t set, std::size_t way)
    {
        std::size_t node = leaves_ + way;
        while (node > 1) {
            std::size_t parent = node / 2;
            // Mark the direction of `node` as recently used: bit true
            // means the left child is hot.
            bits_[set * leaves_ + parent] = (node % 2 == 0);
            node = parent;
        }
    }

    std::size_t ways_;
    std::size_t leaves_;
    std::vector<bool> bits_;
};

} // namespace

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(ReplacementKind kind, std::size_t sets,
                      std::size_t ways, std::uint64_t seed)
{
    fbsim_assert(ways > 0);
    switch (kind) {
      case ReplacementKind::LRU:
        return std::make_unique<StampPolicy>(true, "LRU", sets, ways);
      case ReplacementKind::FIFO:
        return std::make_unique<StampPolicy>(false, "FIFO", sets, ways);
      case ReplacementKind::Random:
        return std::make_unique<RandomPolicy>(ways, seed);
      case ReplacementKind::PLRU:
        return std::make_unique<TreePlruPolicy>(sets, ways);
    }
    fbsim_panic("unknown replacement kind");
}

} // namespace fbsim
