/**
 * @file
 * Sector cache storage (section 5.1, [Hill84]).
 *
 * A sector cache associates one address tag with a *sector* of several
 * transfer subsectors.  Here the subsector equals the system line size
 * (it must - section 5.1 explains why the transfer unit has to be
 * standardized), so each sector entry carries one tag plus an
 * independent MOESI state and data array per subsector.  Tag storage
 * shrinks by the sector factor; the price is sector-granular
 * allocation (installing a new sector may evict several valid, even
 * owned, subsectors at once).
 */

#ifndef FBSIM_CACHE_SECTOR_STORE_H_
#define FBSIM_CACHE_SECTOR_STORE_H_

#include <memory>

#include "cache/line_store.h"

namespace fbsim {

/** Shape of a sector store. */
struct SectorGeometry
{
    std::size_t lineBytes = 32;       ///< transfer subsector size
    std::size_t subsectorsPerSector = 4;
    std::size_t numSets = 16;         ///< sector sets (power of two)
    std::size_t assoc = 2;            ///< sectors per set

    /** Total data capacity in bytes. */
    std::size_t
    capacityBytes() const
    {
        return lineBytes * subsectorsPerSector * numSets * assoc;
    }

    /** Sector address of a line. */
    LineAddr sectorOf(LineAddr la) const
    { return la / subsectorsPerSector; }

    /** Subsector index of a line within its sector. */
    std::size_t subOf(LineAddr la) const
    { return la % subsectorsPerSector; }

    /** Set index of a sector. */
    std::size_t setOf(LineAddr sector) const
    { return sector % numSets; }

    /** fatal()s on malformed parameters. */
    void validate() const;
};

/** Sector-organized line store. */
class SectorStore : public LineStore
{
  public:
    SectorStore(const SectorGeometry &geometry, ReplacementKind repl,
                std::uint64_t seed);

    const SectorGeometry &geometry() const { return geom_; }

    std::size_t wordsPerLine() const override
    { return geom_.lineBytes / kWordBytes; }

    CacheLine *find(LineAddr la) override;
    const CacheLine *peek(LineAddr la) const override;
    std::vector<CacheLine *> evictionSet(LineAddr la) override;
    CacheLine &install(LineAddr la, State s) override;
    void touch(const CacheLine &line) override;
    bool nearReplacement(const CacheLine &line) const override;
    void forEachValidLine(
        const std::function<void(const CacheLine &)> &fn) const override;
    std::size_t validLineCount() const override;

    /** Number of resident sector tags (for tag-economy statistics). */
    std::size_t validSectorCount() const;

  private:
    /** One sector frame: a tag plus per-subsector lines. */
    struct Sector
    {
        bool tagValid = false;
        LineAddr sector = 0;   ///< sector address (lineAddr / K)
        std::vector<CacheLine> subs;

        bool
        anyValid() const
        {
            for (const CacheLine &line : subs) {
                if (line.valid())
                    return true;
            }
            return false;
        }
    };

    Sector *findSector(LineAddr sector);
    const Sector *findSector(LineAddr sector) const;
    std::size_t frameOf(const CacheLine &line) const;

    SectorGeometry geom_;
    std::unique_ptr<ReplacementPolicy> repl_;
    std::vector<Sector> sectors_;   // sets x ways, row-major
};

} // namespace fbsim

#endif // FBSIM_CACHE_SECTOR_STORE_H_
