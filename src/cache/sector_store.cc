#include "cache/sector_store.h"

#include "common/logging.h"

namespace fbsim {

namespace {

bool
isPow2(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

void
SectorGeometry::validate() const
{
    if (lineBytes < kWordBytes || !isPow2(lineBytes))
        fbsim_fatal("subsector size %zu must be a power of two >= %zu",
                    lineBytes, kWordBytes);
    if (subsectorsPerSector == 0)
        fbsim_fatal("sectors need at least one subsector");
    if (!isPow2(numSets))
        fbsim_fatal("sector set count %zu must be a power of two",
                    numSets);
    if (assoc == 0)
        fbsim_fatal("sector associativity must be at least 1");
}

SectorStore::SectorStore(const SectorGeometry &geometry,
                         ReplacementKind repl, std::uint64_t seed)
    : geom_(geometry)
{
    geom_.validate();
    repl_ = makeReplacementPolicy(repl, geom_.numSets, geom_.assoc, seed);
    sectors_.resize(geom_.numSets * geom_.assoc);
    for (Sector &frame : sectors_)
        frame.subs.resize(geom_.subsectorsPerSector);
}

SectorStore::Sector *
SectorStore::findSector(LineAddr sector)
{
    std::size_t set = geom_.setOf(sector);
    for (std::size_t w = 0; w < geom_.assoc; ++w) {
        Sector &frame = sectors_[set * geom_.assoc + w];
        if (frame.tagValid && frame.sector == sector)
            return &frame;
    }
    return nullptr;
}

const SectorStore::Sector *
SectorStore::findSector(LineAddr sector) const
{
    return const_cast<SectorStore *>(this)->findSector(sector);
}

CacheLine *
SectorStore::find(LineAddr la)
{
    Sector *frame = findSector(geom_.sectorOf(la));
    if (!frame)
        return nullptr;
    CacheLine &line = frame->subs[geom_.subOf(la)];
    return line.valid() ? &line : nullptr;
}

const CacheLine *
SectorStore::peek(LineAddr la) const
{
    return const_cast<SectorStore *>(this)->find(la);
}

std::vector<CacheLine *>
SectorStore::evictionSet(LineAddr la)
{
    LineAddr sector = geom_.sectorOf(la);
    if (findSector(sector))
        return {};   // sector resident: the subsector slot is free
    std::size_t set = geom_.setOf(sector);
    // A reusable frame (never tagged, or tagged but fully invalid)?
    for (std::size_t w = 0; w < geom_.assoc; ++w) {
        Sector &frame = sectors_[set * geom_.assoc + w];
        if (!frame.tagValid || !frame.anyValid())
            return {};
    }
    // Evict a whole sector: every valid subsector goes.
    Sector &victim = sectors_[set * geom_.assoc + repl_->victim(set)];
    std::vector<CacheLine *> out;
    for (CacheLine &line : victim.subs) {
        if (line.valid())
            out.push_back(&line);
    }
    return out;
}

CacheLine &
SectorStore::install(LineAddr la, State s)
{
    LineAddr sector = geom_.sectorOf(la);
    Sector *frame = findSector(sector);
    if (!frame) {
        std::size_t set = geom_.setOf(sector);
        for (std::size_t w = 0; w < geom_.assoc; ++w) {
            Sector &cand = sectors_[set * geom_.assoc + w];
            if (!cand.tagValid || !cand.anyValid()) {
                frame = &cand;
                break;
            }
        }
        fbsim_assert(frame != nullptr);
        frame->tagValid = true;
        frame->sector = sector;
        // Retag every subsector slot so line addresses track the tag.
        for (std::size_t k = 0; k < geom_.subsectorsPerSector; ++k) {
            frame->subs[k].addr = sector * geom_.subsectorsPerSector + k;
            frame->subs[k].state = State::I;
            frame->subs[k].data.clear();
        }
        std::size_t way = static_cast<std::size_t>(
            frame - &sectors_[set * geom_.assoc]);
        repl_->onFill(set, way);
    }
    CacheLine &line = frame->subs[geom_.subOf(la)];
    fbsim_assert(!line.valid());
    line.addr = la;
    line.state = s;
    line.data.assign(wordsPerLine(), 0);
    return line;
}

std::size_t
SectorStore::frameOf(const CacheLine &line) const
{
    LineAddr sector = geom_.sectorOf(line.addr);
    std::size_t set = geom_.setOf(sector);
    for (std::size_t w = 0; w < geom_.assoc; ++w) {
        const Sector &frame = sectors_[set * geom_.assoc + w];
        if (frame.tagValid && frame.sector == sector)
            return set * geom_.assoc + w;
    }
    fbsim_panic("line not resident in any sector frame");
}

void
SectorStore::touch(const CacheLine &line)
{
    std::size_t idx = frameOf(line);
    repl_->onAccess(idx / geom_.assoc, idx % geom_.assoc);
}

bool
SectorStore::nearReplacement(const CacheLine &line) const
{
    std::size_t idx = frameOf(line);
    return repl_->isNearReplacement(idx / geom_.assoc,
                                    idx % geom_.assoc);
}

void
SectorStore::forEachValidLine(
    const std::function<void(const CacheLine &)> &fn) const
{
    for (const Sector &frame : sectors_) {
        if (!frame.tagValid)
            continue;
        for (const CacheLine &line : frame.subs) {
            if (line.valid())
                fn(line);
        }
    }
}

std::size_t
SectorStore::validLineCount() const
{
    std::size_t n = 0;
    forEachValidLine([&](const CacheLine &) { ++n; });
    return n;
}

std::size_t
SectorStore::validSectorCount() const
{
    std::size_t n = 0;
    for (const Sector &frame : sectors_) {
        if (frame.tagValid && frame.anyValid())
            ++n;
    }
    return n;
}

} // namespace fbsim
