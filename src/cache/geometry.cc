#include "cache/geometry.h"

#include "common/logging.h"

namespace fbsim {

namespace {

bool
isPow2(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

void
CacheGeometry::validate() const
{
    if (lineBytes < kWordBytes || !isPow2(lineBytes))
        fbsim_fatal("line size %zu must be a power of two >= %zu",
                    lineBytes, kWordBytes);
    if (!isPow2(numSets))
        fbsim_fatal("set count %zu must be a power of two", numSets);
    if (assoc == 0)
        fbsim_fatal("associativity must be at least 1");
}

} // namespace fbsim
