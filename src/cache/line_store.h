/**
 * @file
 * Abstract line storage for cache controllers.
 *
 * Two implementations exist: the conventional set-associative TagStore
 * (one tag per line) and the SectorStore (one tag per multi-line
 * sector, per-subsector state - section 5.1's sector caches [Hill84]).
 * The controller in protocols/ is written against this interface, so
 * consistency status is always associated with the transfer subsector
 * (= the system line), exactly as the paper concludes it must be.
 */

#ifndef FBSIM_CACHE_LINE_STORE_H_
#define FBSIM_CACHE_LINE_STORE_H_

#include <functional>
#include <vector>

#include "cache/tag_store.h"

namespace fbsim {

/** Storage abstraction: lines indexed by LineAddr. */
class LineStore
{
  public:
    virtual ~LineStore() = default;

    /** Words per line (the system line size). */
    virtual std::size_t wordsPerLine() const = 0;

    /** Find a valid line; null on miss. */
    virtual CacheLine *find(LineAddr la) = 0;

    /** Const lookup for checkers/inspection. */
    virtual const CacheLine *peek(LineAddr la) const = 0;

    /**
     * Valid lines that must be evicted before `la` can be installed.
     * Empty when a slot is free (or already allocated, for a sector
     * whose tag is resident).  The controller flushes each (pushing
     * owned data) and marks it invalid, then calls install().
     */
    virtual std::vector<CacheLine *> evictionSet(LineAddr la) = 0;

    /**
     * Allocate `la` (the eviction set must have been invalidated) and
     * return its line, tagged and zero-filled, in state `s`.
     */
    virtual CacheLine &install(LineAddr la, State s) = 0;

    /** Replacement bookkeeping for a hit. */
    virtual void touch(const CacheLine &line) = 0;

    /** Consistency state of the line holding `la` (I when absent).
     *  Stores with packed metadata answer without touching a
     *  CacheLine; the default probes peek(). */
    virtual State
    stateOf(LineAddr la) const
    {
        const CacheLine *line = peek(la);
        return line ? line->state : State::I;
    }

    /**
     * Change a resident line's consistency state.  Stores with derived
     * metadata (packed tag/state mirrors) keep it in sync here; the
     * controller owns the bus-side bookkeeping (snoop-filter
     * presence).  All state changes outside install() must funnel
     * through this.
     */
    virtual void
    setState(CacheLine &line, State next)
    {
        line.state = next;
    }

    /**
     * Invalidate every line at once - O(1) where the store supports
     * epochs, a plain walk otherwise.  No presence notifications are
     * issued (the caller bulk-clears the bus side), and any raw
     * CacheLine pointers held across the call are invalidated.
     */
    virtual void
    bulkInvalidate()
    {
        // Collect first: setState must not run under the store's own
        // iteration.
        std::vector<CacheLine *> held;
        forEachValidLine([&](const CacheLine &line) {
            held.push_back(const_cast<CacheLine *>(&line));
        });
        for (CacheLine *line : held)
            setState(*line, State::I);
    }

    /** Section 5.2 near-replacement probe. */
    virtual bool nearReplacement(const CacheLine &line) const = 0;

    /** Visit every valid line. */
    virtual void forEachValidLine(
        const std::function<void(const CacheLine &)> &fn) const = 0;

    /** Count of valid lines. */
    virtual std::size_t validLineCount() const = 0;
};

/** Conventional store: adapts TagStore to the LineStore interface. */
class PlainLineStore : public LineStore
{
  public:
    PlainLineStore(const CacheGeometry &geometry, ReplacementKind repl,
                   std::uint64_t seed)
        : tags_(geometry, repl, seed)
    {
    }

    std::size_t
    wordsPerLine() const override
    {
        return tags_.geometry().wordsPerLine();
    }

    CacheLine *find(LineAddr la) override { return tags_.find(la); }

    const CacheLine *
    peek(LineAddr la) const override
    {
        return tags_.peek(la);
    }

    std::vector<CacheLine *>
    evictionSet(LineAddr la) override
    {
        // victimFor repairs bulk-invalidated frames to state I before
        // returning them, so valid() here is trustworthy.
        CacheLine &victim = tags_.victimFor(la);
        if (victim.valid())
            return {&victim};
        return {};
    }

    CacheLine &
    install(LineAddr la, State s) override
    {
        CacheLine &line = tags_.victimFor(la);
        tags_.install(line, la, s);
        return line;
    }

    void touch(const CacheLine &line) override { tags_.touch(line); }

    State
    stateOf(LineAddr la) const override
    {
        return tags_.stateOf(la);
    }

    void
    setState(CacheLine &line, State next) override
    {
        tags_.setState(line, next);
    }

    void bulkInvalidate() override { tags_.bulkInvalidate(); }

    bool
    nearReplacement(const CacheLine &line) const override
    {
        return tags_.nearReplacement(line);
    }

    void
    forEachValidLine(const std::function<void(const CacheLine &)> &fn)
        const override
    {
        tags_.forEachValidLine(fn);
    }

    std::size_t
    validLineCount() const override
    {
        return tags_.validLineCount();
    }

    const TagStore &tags() const { return tags_; }
    /** Direct store access for the controller's devirtualized hit
     *  path (state changes still funnel through setState). */
    TagStore &tags() { return tags_; }

  private:
    TagStore tags_;
};

} // namespace fbsim

#endif // FBSIM_CACHE_LINE_STORE_H_
