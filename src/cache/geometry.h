/**
 * @file
 * Cache geometry: line size, set count and associativity, plus the
 * address arithmetic derived from them.
 *
 * Section 5.1 of the paper argues that a Futurebus system must
 * standardize on a single line size; fbsim enforces this by making the
 * line size a System-wide constant that every cache geometry must
 * match (see sim/system.h).
 */

#ifndef FBSIM_CACHE_GEOMETRY_H_
#define FBSIM_CACHE_GEOMETRY_H_

#include <bit>
#include <cstddef>

#include "common/types.h"

namespace fbsim {

/** Shape of one cache: line size, sets and ways. */
struct CacheGeometry
{
    std::size_t lineBytes = 32;   ///< bytes per line (power of two, >= 8)
    std::size_t numSets = 64;     ///< sets (power of two)
    std::size_t assoc = 4;        ///< ways per set (>= 1)

    /** 64-bit words per line. */
    std::size_t wordsPerLine() const { return lineBytes / kWordBytes; }

    /** Total capacity in bytes. */
    std::size_t capacityBytes() const
    { return lineBytes * numSets * assoc; }

    /**
     * Line address containing the byte address.  lineBytes and
     * numSets are powers of two (validate() enforces it), so the
     * address arithmetic below is shift/mask rather than the integer
     * divisions the compiler would otherwise emit for runtime
     * divisors - these run on every cache lookup.
     */
    LineAddr
    lineOf(Addr a) const
    {
        return a >> std::countr_zero(lineBytes);
    }

    /** First byte address of a line. */
    Addr
    lineBase(LineAddr la) const
    {
        return la << std::countr_zero(lineBytes);
    }

    /** Index of the word within its line. */
    std::size_t
    wordIndex(Addr a) const
    {
        return (a & (lineBytes - 1)) / kWordBytes;
    }

    /** Set index for a line address. */
    std::size_t setOf(LineAddr la) const { return la & (numSets - 1); }

    /** fatal()s if the geometry is malformed (sizes, powers of two). */
    void validate() const;
};

} // namespace fbsim

#endif // FBSIM_CACHE_GEOMETRY_H_
