file(REMOVE_RECURSE
  "CMakeFiles/fbsim_hier.dir/bridge.cc.o"
  "CMakeFiles/fbsim_hier.dir/bridge.cc.o.d"
  "CMakeFiles/fbsim_hier.dir/hier_engine.cc.o"
  "CMakeFiles/fbsim_hier.dir/hier_engine.cc.o.d"
  "CMakeFiles/fbsim_hier.dir/hier_system.cc.o"
  "CMakeFiles/fbsim_hier.dir/hier_system.cc.o.d"
  "libfbsim_hier.a"
  "libfbsim_hier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbsim_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
