# Empty dependencies file for fbsim_hier.
# This may be replaced when dependencies are built.
