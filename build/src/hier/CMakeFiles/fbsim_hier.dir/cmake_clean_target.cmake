file(REMOVE_RECURSE
  "libfbsim_hier.a"
)
