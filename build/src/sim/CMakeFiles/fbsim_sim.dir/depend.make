# Empty dependencies file for fbsim_sim.
# This may be replaced when dependencies are built.
