file(REMOVE_RECURSE
  "CMakeFiles/fbsim_sim.dir/engine.cc.o"
  "CMakeFiles/fbsim_sim.dir/engine.cc.o.d"
  "CMakeFiles/fbsim_sim.dir/system.cc.o"
  "CMakeFiles/fbsim_sim.dir/system.cc.o.d"
  "libfbsim_sim.a"
  "libfbsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
