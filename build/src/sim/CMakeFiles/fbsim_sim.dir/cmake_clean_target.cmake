file(REMOVE_RECURSE
  "libfbsim_sim.a"
)
