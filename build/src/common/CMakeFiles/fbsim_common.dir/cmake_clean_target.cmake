file(REMOVE_RECURSE
  "libfbsim_common.a"
)
