file(REMOVE_RECURSE
  "CMakeFiles/fbsim_common.dir/logging.cc.o"
  "CMakeFiles/fbsim_common.dir/logging.cc.o.d"
  "CMakeFiles/fbsim_common.dir/random.cc.o"
  "CMakeFiles/fbsim_common.dir/random.cc.o.d"
  "libfbsim_common.a"
  "libfbsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
