# Empty compiler generated dependencies file for fbsim_common.
# This may be replaced when dependencies are built.
