# Empty dependencies file for fbsim_memory.
# This may be replaced when dependencies are built.
