file(REMOVE_RECURSE
  "libfbsim_memory.a"
)
