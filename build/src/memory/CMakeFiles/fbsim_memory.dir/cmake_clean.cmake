file(REMOVE_RECURSE
  "CMakeFiles/fbsim_memory.dir/main_memory.cc.o"
  "CMakeFiles/fbsim_memory.dir/main_memory.cc.o.d"
  "libfbsim_memory.a"
  "libfbsim_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbsim_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
