# Empty compiler generated dependencies file for fbsim_bus.
# This may be replaced when dependencies are built.
