file(REMOVE_RECURSE
  "CMakeFiles/fbsim_bus.dir/arbiter.cc.o"
  "CMakeFiles/fbsim_bus.dir/arbiter.cc.o.d"
  "CMakeFiles/fbsim_bus.dir/bus.cc.o"
  "CMakeFiles/fbsim_bus.dir/bus.cc.o.d"
  "CMakeFiles/fbsim_bus.dir/cost_model.cc.o"
  "CMakeFiles/fbsim_bus.dir/cost_model.cc.o.d"
  "CMakeFiles/fbsim_bus.dir/handshake.cc.o"
  "CMakeFiles/fbsim_bus.dir/handshake.cc.o.d"
  "CMakeFiles/fbsim_bus.dir/memory_slave.cc.o"
  "CMakeFiles/fbsim_bus.dir/memory_slave.cc.o.d"
  "CMakeFiles/fbsim_bus.dir/transaction_log.cc.o"
  "CMakeFiles/fbsim_bus.dir/transaction_log.cc.o.d"
  "libfbsim_bus.a"
  "libfbsim_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbsim_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
