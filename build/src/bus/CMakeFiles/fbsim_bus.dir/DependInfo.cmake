
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bus/arbiter.cc" "src/bus/CMakeFiles/fbsim_bus.dir/arbiter.cc.o" "gcc" "src/bus/CMakeFiles/fbsim_bus.dir/arbiter.cc.o.d"
  "/root/repo/src/bus/bus.cc" "src/bus/CMakeFiles/fbsim_bus.dir/bus.cc.o" "gcc" "src/bus/CMakeFiles/fbsim_bus.dir/bus.cc.o.d"
  "/root/repo/src/bus/cost_model.cc" "src/bus/CMakeFiles/fbsim_bus.dir/cost_model.cc.o" "gcc" "src/bus/CMakeFiles/fbsim_bus.dir/cost_model.cc.o.d"
  "/root/repo/src/bus/handshake.cc" "src/bus/CMakeFiles/fbsim_bus.dir/handshake.cc.o" "gcc" "src/bus/CMakeFiles/fbsim_bus.dir/handshake.cc.o.d"
  "/root/repo/src/bus/memory_slave.cc" "src/bus/CMakeFiles/fbsim_bus.dir/memory_slave.cc.o" "gcc" "src/bus/CMakeFiles/fbsim_bus.dir/memory_slave.cc.o.d"
  "/root/repo/src/bus/transaction_log.cc" "src/bus/CMakeFiles/fbsim_bus.dir/transaction_log.cc.o" "gcc" "src/bus/CMakeFiles/fbsim_bus.dir/transaction_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fbsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fbsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/fbsim_memory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
