file(REMOVE_RECURSE
  "libfbsim_bus.a"
)
