# Empty compiler generated dependencies file for fbsim_trace.
# This may be replaced when dependencies are built.
