file(REMOVE_RECURSE
  "CMakeFiles/fbsim_trace.dir/trace_io.cc.o"
  "CMakeFiles/fbsim_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/fbsim_trace.dir/workloads.cc.o"
  "CMakeFiles/fbsim_trace.dir/workloads.cc.o.d"
  "libfbsim_trace.a"
  "libfbsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
