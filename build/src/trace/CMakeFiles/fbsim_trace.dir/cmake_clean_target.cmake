file(REMOVE_RECURSE
  "libfbsim_trace.a"
)
