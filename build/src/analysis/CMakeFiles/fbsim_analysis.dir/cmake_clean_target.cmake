file(REMOVE_RECURSE
  "libfbsim_analysis.a"
)
