# Empty compiler generated dependencies file for fbsim_analysis.
# This may be replaced when dependencies are built.
