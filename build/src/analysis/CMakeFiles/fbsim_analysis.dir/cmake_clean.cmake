file(REMOVE_RECURSE
  "CMakeFiles/fbsim_analysis.dir/bus_model.cc.o"
  "CMakeFiles/fbsim_analysis.dir/bus_model.cc.o.d"
  "libfbsim_analysis.a"
  "libfbsim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbsim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
