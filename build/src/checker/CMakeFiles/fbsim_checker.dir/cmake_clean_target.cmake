file(REMOVE_RECURSE
  "libfbsim_checker.a"
)
