file(REMOVE_RECURSE
  "CMakeFiles/fbsim_checker.dir/coherence_checker.cc.o"
  "CMakeFiles/fbsim_checker.dir/coherence_checker.cc.o.d"
  "libfbsim_checker.a"
  "libfbsim_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbsim_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
