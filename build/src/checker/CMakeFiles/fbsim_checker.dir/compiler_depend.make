# Empty compiler generated dependencies file for fbsim_checker.
# This may be replaced when dependencies are built.
