file(REMOVE_RECURSE
  "libfbsim_text.a"
)
