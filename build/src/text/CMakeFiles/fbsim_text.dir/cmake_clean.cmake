file(REMOVE_RECURSE
  "CMakeFiles/fbsim_text.dir/golden_tables.cc.o"
  "CMakeFiles/fbsim_text.dir/golden_tables.cc.o.d"
  "CMakeFiles/fbsim_text.dir/report.cc.o"
  "CMakeFiles/fbsim_text.dir/report.cc.o.d"
  "CMakeFiles/fbsim_text.dir/table_render.cc.o"
  "CMakeFiles/fbsim_text.dir/table_render.cc.o.d"
  "CMakeFiles/fbsim_text.dir/waveform.cc.o"
  "CMakeFiles/fbsim_text.dir/waveform.cc.o.d"
  "libfbsim_text.a"
  "libfbsim_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbsim_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
