# Empty compiler generated dependencies file for fbsim_text.
# This may be replaced when dependencies are built.
