file(REMOVE_RECURSE
  "libfbsim_core.a"
)
