# Empty dependencies file for fbsim_core.
# This may be replaced when dependencies are built.
