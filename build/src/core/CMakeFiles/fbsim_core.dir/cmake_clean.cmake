file(REMOVE_RECURSE
  "CMakeFiles/fbsim_core.dir/berkeley_table.cc.o"
  "CMakeFiles/fbsim_core.dir/berkeley_table.cc.o.d"
  "CMakeFiles/fbsim_core.dir/compat.cc.o"
  "CMakeFiles/fbsim_core.dir/compat.cc.o.d"
  "CMakeFiles/fbsim_core.dir/dragon_table.cc.o"
  "CMakeFiles/fbsim_core.dir/dragon_table.cc.o.d"
  "CMakeFiles/fbsim_core.dir/events.cc.o"
  "CMakeFiles/fbsim_core.dir/events.cc.o.d"
  "CMakeFiles/fbsim_core.dir/firefly_table.cc.o"
  "CMakeFiles/fbsim_core.dir/firefly_table.cc.o.d"
  "CMakeFiles/fbsim_core.dir/illinois_table.cc.o"
  "CMakeFiles/fbsim_core.dir/illinois_table.cc.o.d"
  "CMakeFiles/fbsim_core.dir/moesi_tables.cc.o"
  "CMakeFiles/fbsim_core.dir/moesi_tables.cc.o.d"
  "CMakeFiles/fbsim_core.dir/policy.cc.o"
  "CMakeFiles/fbsim_core.dir/policy.cc.o.d"
  "CMakeFiles/fbsim_core.dir/protocol_table.cc.o"
  "CMakeFiles/fbsim_core.dir/protocol_table.cc.o.d"
  "CMakeFiles/fbsim_core.dir/state.cc.o"
  "CMakeFiles/fbsim_core.dir/state.cc.o.d"
  "CMakeFiles/fbsim_core.dir/write_once_table.cc.o"
  "CMakeFiles/fbsim_core.dir/write_once_table.cc.o.d"
  "libfbsim_core.a"
  "libfbsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
