
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/berkeley_table.cc" "src/core/CMakeFiles/fbsim_core.dir/berkeley_table.cc.o" "gcc" "src/core/CMakeFiles/fbsim_core.dir/berkeley_table.cc.o.d"
  "/root/repo/src/core/compat.cc" "src/core/CMakeFiles/fbsim_core.dir/compat.cc.o" "gcc" "src/core/CMakeFiles/fbsim_core.dir/compat.cc.o.d"
  "/root/repo/src/core/dragon_table.cc" "src/core/CMakeFiles/fbsim_core.dir/dragon_table.cc.o" "gcc" "src/core/CMakeFiles/fbsim_core.dir/dragon_table.cc.o.d"
  "/root/repo/src/core/events.cc" "src/core/CMakeFiles/fbsim_core.dir/events.cc.o" "gcc" "src/core/CMakeFiles/fbsim_core.dir/events.cc.o.d"
  "/root/repo/src/core/firefly_table.cc" "src/core/CMakeFiles/fbsim_core.dir/firefly_table.cc.o" "gcc" "src/core/CMakeFiles/fbsim_core.dir/firefly_table.cc.o.d"
  "/root/repo/src/core/illinois_table.cc" "src/core/CMakeFiles/fbsim_core.dir/illinois_table.cc.o" "gcc" "src/core/CMakeFiles/fbsim_core.dir/illinois_table.cc.o.d"
  "/root/repo/src/core/moesi_tables.cc" "src/core/CMakeFiles/fbsim_core.dir/moesi_tables.cc.o" "gcc" "src/core/CMakeFiles/fbsim_core.dir/moesi_tables.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/fbsim_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/fbsim_core.dir/policy.cc.o.d"
  "/root/repo/src/core/protocol_table.cc" "src/core/CMakeFiles/fbsim_core.dir/protocol_table.cc.o" "gcc" "src/core/CMakeFiles/fbsim_core.dir/protocol_table.cc.o.d"
  "/root/repo/src/core/state.cc" "src/core/CMakeFiles/fbsim_core.dir/state.cc.o" "gcc" "src/core/CMakeFiles/fbsim_core.dir/state.cc.o.d"
  "/root/repo/src/core/write_once_table.cc" "src/core/CMakeFiles/fbsim_core.dir/write_once_table.cc.o" "gcc" "src/core/CMakeFiles/fbsim_core.dir/write_once_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fbsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
