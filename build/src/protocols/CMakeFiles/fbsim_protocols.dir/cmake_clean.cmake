file(REMOVE_RECURSE
  "CMakeFiles/fbsim_protocols.dir/factory.cc.o"
  "CMakeFiles/fbsim_protocols.dir/factory.cc.o.d"
  "CMakeFiles/fbsim_protocols.dir/non_caching.cc.o"
  "CMakeFiles/fbsim_protocols.dir/non_caching.cc.o.d"
  "CMakeFiles/fbsim_protocols.dir/snooping_cache.cc.o"
  "CMakeFiles/fbsim_protocols.dir/snooping_cache.cc.o.d"
  "CMakeFiles/fbsim_protocols.dir/transition_coverage.cc.o"
  "CMakeFiles/fbsim_protocols.dir/transition_coverage.cc.o.d"
  "libfbsim_protocols.a"
  "libfbsim_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbsim_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
