# Empty dependencies file for fbsim_protocols.
# This may be replaced when dependencies are built.
