file(REMOVE_RECURSE
  "libfbsim_protocols.a"
)
