file(REMOVE_RECURSE
  "CMakeFiles/fbsim_cache.dir/geometry.cc.o"
  "CMakeFiles/fbsim_cache.dir/geometry.cc.o.d"
  "CMakeFiles/fbsim_cache.dir/replacement.cc.o"
  "CMakeFiles/fbsim_cache.dir/replacement.cc.o.d"
  "CMakeFiles/fbsim_cache.dir/sector_store.cc.o"
  "CMakeFiles/fbsim_cache.dir/sector_store.cc.o.d"
  "CMakeFiles/fbsim_cache.dir/tag_store.cc.o"
  "CMakeFiles/fbsim_cache.dir/tag_store.cc.o.d"
  "libfbsim_cache.a"
  "libfbsim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbsim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
