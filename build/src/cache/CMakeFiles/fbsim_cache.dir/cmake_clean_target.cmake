file(REMOVE_RECURSE
  "libfbsim_cache.a"
)
