# Empty compiler generated dependencies file for fbsim_cache.
# This may be replaced when dependencies are built.
