
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/geometry.cc" "src/cache/CMakeFiles/fbsim_cache.dir/geometry.cc.o" "gcc" "src/cache/CMakeFiles/fbsim_cache.dir/geometry.cc.o.d"
  "/root/repo/src/cache/replacement.cc" "src/cache/CMakeFiles/fbsim_cache.dir/replacement.cc.o" "gcc" "src/cache/CMakeFiles/fbsim_cache.dir/replacement.cc.o.d"
  "/root/repo/src/cache/sector_store.cc" "src/cache/CMakeFiles/fbsim_cache.dir/sector_store.cc.o" "gcc" "src/cache/CMakeFiles/fbsim_cache.dir/sector_store.cc.o.d"
  "/root/repo/src/cache/tag_store.cc" "src/cache/CMakeFiles/fbsim_cache.dir/tag_store.cc.o" "gcc" "src/cache/CMakeFiles/fbsim_cache.dir/tag_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fbsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fbsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
