# Empty dependencies file for multibus_cluster.
# This may be replaced when dependencies are built.
