file(REMOVE_RECURSE
  "CMakeFiles/multibus_cluster.dir/multibus_cluster.cpp.o"
  "CMakeFiles/multibus_cluster.dir/multibus_cluster.cpp.o.d"
  "multibus_cluster"
  "multibus_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multibus_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
