file(REMOVE_RECURSE
  "CMakeFiles/trace_driven.dir/trace_driven.cpp.o"
  "CMakeFiles/trace_driven.dir/trace_driven.cpp.o.d"
  "trace_driven"
  "trace_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
