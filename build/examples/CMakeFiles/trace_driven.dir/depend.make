# Empty dependencies file for trace_driven.
# This may be replaced when dependencies are built.
