file(REMOVE_RECURSE
  "CMakeFiles/mixed_system.dir/mixed_system.cpp.o"
  "CMakeFiles/mixed_system.dir/mixed_system.cpp.o.d"
  "mixed_system"
  "mixed_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
