# Empty dependencies file for mixed_system.
# This may be replaced when dependencies are built.
