# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mixed_system "/root/repo/build/examples/mixed_system")
set_tests_properties(example_mixed_system PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multibus_cluster "/root/repo/build/examples/multibus_cluster")
set_tests_properties(example_multibus_cluster PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_protocol_explorer "/root/repo/build/examples/protocol_explorer" "dragon" "4")
set_tests_properties(example_protocol_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_generate "/root/repo/build/examples/trace_driven" "--generate" "/root/repo/build/examples/example.trace" "4" "20000")
set_tests_properties(example_trace_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_run "/root/repo/build/examples/trace_driven" "/root/repo/build/examples/example.trace" "berkeley")
set_tests_properties(example_trace_run PROPERTIES  DEPENDS "example_trace_generate" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
