# Empty dependencies file for mixed_system_test.
# This may be replaced when dependencies are built.
