file(REMOVE_RECURSE
  "CMakeFiles/mixed_system_test.dir/mixed_system_test.cc.o"
  "CMakeFiles/mixed_system_test.dir/mixed_system_test.cc.o.d"
  "mixed_system_test"
  "mixed_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
