file(REMOVE_RECURSE
  "CMakeFiles/text_report_test.dir/text_report_test.cc.o"
  "CMakeFiles/text_report_test.dir/text_report_test.cc.o.d"
  "text_report_test"
  "text_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
