# Empty compiler generated dependencies file for text_report_test.
# This may be replaced when dependencies are built.
