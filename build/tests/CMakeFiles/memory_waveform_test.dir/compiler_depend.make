# Empty compiler generated dependencies file for memory_waveform_test.
# This may be replaced when dependencies are built.
