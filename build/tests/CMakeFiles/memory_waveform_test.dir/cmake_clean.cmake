file(REMOVE_RECURSE
  "CMakeFiles/memory_waveform_test.dir/memory_waveform_test.cc.o"
  "CMakeFiles/memory_waveform_test.dir/memory_waveform_test.cc.o.d"
  "memory_waveform_test"
  "memory_waveform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_waveform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
