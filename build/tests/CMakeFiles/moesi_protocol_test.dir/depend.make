# Empty dependencies file for moesi_protocol_test.
# This may be replaced when dependencies are built.
