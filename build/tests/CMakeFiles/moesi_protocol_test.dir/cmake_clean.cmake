file(REMOVE_RECURSE
  "CMakeFiles/moesi_protocol_test.dir/moesi_protocol_test.cc.o"
  "CMakeFiles/moesi_protocol_test.dir/moesi_protocol_test.cc.o.d"
  "moesi_protocol_test"
  "moesi_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moesi_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
