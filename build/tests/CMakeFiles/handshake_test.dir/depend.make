# Empty dependencies file for handshake_test.
# This may be replaced when dependencies are built.
