file(REMOVE_RECURSE
  "CMakeFiles/handshake_test.dir/handshake_test.cc.o"
  "CMakeFiles/handshake_test.dir/handshake_test.cc.o.d"
  "handshake_test"
  "handshake_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handshake_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
