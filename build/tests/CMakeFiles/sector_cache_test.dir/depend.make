# Empty dependencies file for sector_cache_test.
# This may be replaced when dependencies are built.
