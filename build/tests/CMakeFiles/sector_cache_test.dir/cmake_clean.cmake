file(REMOVE_RECURSE
  "CMakeFiles/sector_cache_test.dir/sector_cache_test.cc.o"
  "CMakeFiles/sector_cache_test.dir/sector_cache_test.cc.o.d"
  "sector_cache_test"
  "sector_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sector_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
