file(REMOVE_RECURSE
  "CMakeFiles/config_errors_test.dir/config_errors_test.cc.o"
  "CMakeFiles/config_errors_test.dir/config_errors_test.cc.o.d"
  "config_errors_test"
  "config_errors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_errors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
