# Empty dependencies file for config_errors_test.
# This may be replaced when dependencies are built.
