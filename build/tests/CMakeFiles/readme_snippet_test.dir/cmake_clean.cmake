file(REMOVE_RECURSE
  "CMakeFiles/readme_snippet_test.dir/readme_snippet_test.cc.o"
  "CMakeFiles/readme_snippet_test.dir/readme_snippet_test.cc.o.d"
  "readme_snippet_test"
  "readme_snippet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readme_snippet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
