# Empty compiler generated dependencies file for readme_snippet_test.
# This may be replaced when dependencies are built.
