# Empty compiler generated dependencies file for prior_protocols_test.
# This may be replaced when dependencies are built.
