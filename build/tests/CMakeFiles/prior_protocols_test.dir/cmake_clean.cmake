file(REMOVE_RECURSE
  "CMakeFiles/prior_protocols_test.dir/prior_protocols_test.cc.o"
  "CMakeFiles/prior_protocols_test.dir/prior_protocols_test.cc.o.d"
  "prior_protocols_test"
  "prior_protocols_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prior_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
