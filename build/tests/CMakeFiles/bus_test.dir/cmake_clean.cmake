file(REMOVE_RECURSE
  "CMakeFiles/bus_test.dir/bus_test.cc.o"
  "CMakeFiles/bus_test.dir/bus_test.cc.o.d"
  "bus_test"
  "bus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
