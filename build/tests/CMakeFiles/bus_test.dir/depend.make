# Empty dependencies file for bus_test.
# This may be replaced when dependencies are built.
