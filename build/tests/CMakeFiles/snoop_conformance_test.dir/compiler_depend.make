# Empty compiler generated dependencies file for snoop_conformance_test.
# This may be replaced when dependencies are built.
