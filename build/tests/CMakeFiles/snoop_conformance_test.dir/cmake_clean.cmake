file(REMOVE_RECURSE
  "CMakeFiles/snoop_conformance_test.dir/snoop_conformance_test.cc.o"
  "CMakeFiles/snoop_conformance_test.dir/snoop_conformance_test.cc.o.d"
  "snoop_conformance_test"
  "snoop_conformance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoop_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
