
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/coverage_test.cc" "tests/CMakeFiles/coverage_test.dir/coverage_test.cc.o" "gcc" "tests/CMakeFiles/coverage_test.dir/coverage_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/fbsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/fbsim_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fbsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/fbsim_text.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fbsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/fbsim_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/fbsim_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/fbsim_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/fbsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/fbsim_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fbsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fbsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
