# Empty dependencies file for write_through_test.
# This may be replaced when dependencies are built.
