file(REMOVE_RECURSE
  "CMakeFiles/write_through_test.dir/write_through_test.cc.o"
  "CMakeFiles/write_through_test.dir/write_through_test.cc.o.d"
  "write_through_test"
  "write_through_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_through_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
