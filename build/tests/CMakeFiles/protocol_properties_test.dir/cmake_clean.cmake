file(REMOVE_RECURSE
  "CMakeFiles/protocol_properties_test.dir/protocol_properties_test.cc.o"
  "CMakeFiles/protocol_properties_test.dir/protocol_properties_test.cc.o.d"
  "protocol_properties_test"
  "protocol_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
