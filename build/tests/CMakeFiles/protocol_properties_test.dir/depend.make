# Empty dependencies file for protocol_properties_test.
# This may be replaced when dependencies are built.
