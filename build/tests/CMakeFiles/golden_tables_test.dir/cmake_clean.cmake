file(REMOVE_RECURSE
  "CMakeFiles/golden_tables_test.dir/golden_tables_test.cc.o"
  "CMakeFiles/golden_tables_test.dir/golden_tables_test.cc.o.d"
  "golden_tables_test"
  "golden_tables_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
