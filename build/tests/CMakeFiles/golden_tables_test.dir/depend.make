# Empty dependencies file for golden_tables_test.
# This may be replaced when dependencies are built.
