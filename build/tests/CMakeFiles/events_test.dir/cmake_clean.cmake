file(REMOVE_RECURSE
  "CMakeFiles/events_test.dir/events_test.cc.o"
  "CMakeFiles/events_test.dir/events_test.cc.o.d"
  "events_test"
  "events_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/events_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
