# Empty dependencies file for events_test.
# This may be replaced when dependencies are built.
