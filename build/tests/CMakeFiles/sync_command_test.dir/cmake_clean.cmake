file(REMOVE_RECURSE
  "CMakeFiles/sync_command_test.dir/sync_command_test.cc.o"
  "CMakeFiles/sync_command_test.dir/sync_command_test.cc.o.d"
  "sync_command_test"
  "sync_command_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_command_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
