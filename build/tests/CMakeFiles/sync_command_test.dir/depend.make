# Empty dependencies file for sync_command_test.
# This may be replaced when dependencies are built.
