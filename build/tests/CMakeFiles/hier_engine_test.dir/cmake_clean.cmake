file(REMOVE_RECURSE
  "CMakeFiles/hier_engine_test.dir/hier_engine_test.cc.o"
  "CMakeFiles/hier_engine_test.dir/hier_engine_test.cc.o.d"
  "hier_engine_test"
  "hier_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hier_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
