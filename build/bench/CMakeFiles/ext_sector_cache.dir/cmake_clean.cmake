file(REMOVE_RECURSE
  "CMakeFiles/ext_sector_cache.dir/ext_sector_cache.cc.o"
  "CMakeFiles/ext_sector_cache.dir/ext_sector_cache.cc.o.d"
  "ext_sector_cache"
  "ext_sector_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sector_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
