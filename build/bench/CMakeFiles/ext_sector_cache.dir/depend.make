# Empty dependencies file for ext_sector_cache.
# This may be replaced when dependencies are built.
