file(REMOVE_RECURSE
  "CMakeFiles/ext_multibus.dir/ext_multibus.cc.o"
  "CMakeFiles/ext_multibus.dir/ext_multibus.cc.o.d"
  "ext_multibus"
  "ext_multibus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multibus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
