# Empty dependencies file for ext_multibus.
# This may be replaced when dependencies are built.
