# Empty dependencies file for perf_cost_sensitivity.
# This may be replaced when dependencies are built.
