file(REMOVE_RECURSE
  "CMakeFiles/perf_cost_sensitivity.dir/perf_cost_sensitivity.cc.o"
  "CMakeFiles/perf_cost_sensitivity.dir/perf_cost_sensitivity.cc.o.d"
  "perf_cost_sensitivity"
  "perf_cost_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_cost_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
