file(REMOVE_RECURSE
  "CMakeFiles/perf_mixed_protocols.dir/perf_mixed_protocols.cc.o"
  "CMakeFiles/perf_mixed_protocols.dir/perf_mixed_protocols.cc.o.d"
  "perf_mixed_protocols"
  "perf_mixed_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_mixed_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
