# Empty dependencies file for perf_mixed_protocols.
# This may be replaced when dependencies are built.
