# Empty compiler generated dependencies file for figure3_state_model.
# This may be replaced when dependencies are built.
