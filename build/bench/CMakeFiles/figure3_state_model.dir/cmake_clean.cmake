file(REMOVE_RECURSE
  "CMakeFiles/figure3_state_model.dir/figure3_state_model.cc.o"
  "CMakeFiles/figure3_state_model.dir/figure3_state_model.cc.o.d"
  "figure3_state_model"
  "figure3_state_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_state_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
