file(REMOVE_RECURSE
  "CMakeFiles/perf_protocols.dir/perf_protocols.cc.o"
  "CMakeFiles/perf_protocols.dir/perf_protocols.cc.o.d"
  "perf_protocols"
  "perf_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
