# Empty compiler generated dependencies file for perf_protocols.
# This may be replaced when dependencies are built.
