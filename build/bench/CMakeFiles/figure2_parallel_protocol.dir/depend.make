# Empty dependencies file for figure2_parallel_protocol.
# This may be replaced when dependencies are built.
