file(REMOVE_RECURSE
  "CMakeFiles/figure2_parallel_protocol.dir/figure2_parallel_protocol.cc.o"
  "CMakeFiles/figure2_parallel_protocol.dir/figure2_parallel_protocol.cc.o.d"
  "figure2_parallel_protocol"
  "figure2_parallel_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_parallel_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
