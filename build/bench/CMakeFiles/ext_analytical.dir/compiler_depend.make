# Empty compiler generated dependencies file for ext_analytical.
# This may be replaced when dependencies are built.
