file(REMOVE_RECURSE
  "CMakeFiles/ext_analytical.dir/ext_analytical.cc.o"
  "CMakeFiles/ext_analytical.dir/ext_analytical.cc.o.d"
  "ext_analytical"
  "ext_analytical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
