file(REMOVE_RECURSE
  "CMakeFiles/figure1_handshake.dir/figure1_handshake.cc.o"
  "CMakeFiles/figure1_handshake.dir/figure1_handshake.cc.o.d"
  "figure1_handshake"
  "figure1_handshake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_handshake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
