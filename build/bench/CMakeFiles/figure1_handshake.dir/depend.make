# Empty dependencies file for figure1_handshake.
# This may be replaced when dependencies are built.
