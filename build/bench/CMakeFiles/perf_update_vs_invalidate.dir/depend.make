# Empty dependencies file for perf_update_vs_invalidate.
# This may be replaced when dependencies are built.
