file(REMOVE_RECURSE
  "CMakeFiles/perf_update_vs_invalidate.dir/perf_update_vs_invalidate.cc.o"
  "CMakeFiles/perf_update_vs_invalidate.dir/perf_update_vs_invalidate.cc.o.d"
  "perf_update_vs_invalidate"
  "perf_update_vs_invalidate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_update_vs_invalidate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
