# Empty dependencies file for ablation_choice_points.
# This may be replaced when dependencies are built.
