file(REMOVE_RECURSE
  "CMakeFiles/ablation_choice_points.dir/ablation_choice_points.cc.o"
  "CMakeFiles/ablation_choice_points.dir/ablation_choice_points.cc.o.d"
  "ablation_choice_points"
  "ablation_choice_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_choice_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
