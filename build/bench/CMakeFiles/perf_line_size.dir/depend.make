# Empty dependencies file for perf_line_size.
# This may be replaced when dependencies are built.
