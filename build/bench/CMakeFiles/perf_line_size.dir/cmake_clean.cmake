file(REMOVE_RECURSE
  "CMakeFiles/perf_line_size.dir/perf_line_size.cc.o"
  "CMakeFiles/perf_line_size.dir/perf_line_size.cc.o.d"
  "perf_line_size"
  "perf_line_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_line_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
