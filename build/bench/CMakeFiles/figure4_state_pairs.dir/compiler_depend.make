# Empty compiler generated dependencies file for figure4_state_pairs.
# This may be replaced when dependencies are built.
