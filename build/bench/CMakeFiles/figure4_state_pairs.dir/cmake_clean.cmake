file(REMOVE_RECURSE
  "CMakeFiles/figure4_state_pairs.dir/figure4_state_pairs.cc.o"
  "CMakeFiles/figure4_state_pairs.dir/figure4_state_pairs.cc.o.d"
  "figure4_state_pairs"
  "figure4_state_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_state_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
