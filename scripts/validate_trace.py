#!/usr/bin/env python3
"""Validate a Chrome/Perfetto trace_event JSON file emitted by fbsim.

Usage:
    validate_trace.py TRACE_JSON [--require-fault-tags]

Checks that the file is the JSON-object flavor of the trace_event
format (https://ui.perfetto.dev loads it directly):

  * top level is an object with a "traceEvents" array;
  * every event carries "ph", "pid", "tid" and "name", and every
    non-metadata event carries an integer "ts" >= 0;
  * "ph" is one of the phases fbsim emits: "X" (complete span),
    "i" (instant) or "M" (metadata);
  * within each (pid, tid) track, timestamps are non-decreasing in
    emission order - fbsim timestamps are simulated bus cycles, so a
    decreasing ts means the exporter reordered or mis-stamped events;
  * "X" events carry a non-negative integer "dur".

With --require-fault-tags the trace must also contain at least one
fault-ladder event whose args.detail carries the injector's "[fault
seed=..." reproduction tag (trace_driven --faults produces these);
this is how CI proves the exported trace ties fault events back to a
replayable seed.

Exits 0 when valid, 1 with a diagnostic on the first violation.
"""

import argparse
import json
import sys

ALLOWED_PHASES = {"X", "i", "M"}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace_event JSON file")
    parser.add_argument(
        "--require-fault-tags",
        action="store_true",
        help="require at least one '[fault seed=' replay tag",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args.trace}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty array")

    last_ts = {}  # (pid, tid) -> last seen ts
    fault_tags = 0
    spans = 0
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        for key in ("ph", "pid", "tid", "name"):
            if key not in ev:
                fail(f"{where}: missing {key!r}: {ev}")
        ph = ev["ph"]
        if ph not in ALLOWED_PHASES:
            fail(f"{where}: unexpected ph {ph!r}")
        if not isinstance(ev["name"], str) or not ev["name"]:
            fail(f"{where}: name must be a non-empty string")
        if ph == "M":
            continue

        if not isinstance(ev.get("ts"), int) or ev["ts"] < 0:
            fail(f"{where}: ts must be a non-negative integer: {ev}")
        track = (ev["pid"], ev["tid"])
        if track in last_ts and ev["ts"] < last_ts[track]:
            fail(
                f"{where}: ts {ev['ts']} decreases on track "
                f"pid={track[0]} tid={track[1]} "
                f"(previous {last_ts[track]})"
            )
        last_ts[track] = ev["ts"]

        if ph == "X":
            spans += 1
            if not isinstance(ev.get("dur"), int) or ev["dur"] < 0:
                fail(f"{where}: X event needs integer dur >= 0: {ev}")

        detail = ev.get("args", {}).get("detail", "")
        if "[fault seed=" in detail:
            fault_tags += 1

    if args.require_fault_tags and fault_tags == 0:
        fail("no '[fault seed=' replay tags found "
             "(expected from a --faults run)")

    print(
        f"validate_trace: OK: {len(events)} events, {spans} spans, "
        f"{len(last_ts)} tracks, {fault_tags} fault replay tags"
    )
    sys.exit(0)


if __name__ == "__main__":
    main()
