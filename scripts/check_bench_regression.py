#!/usr/bin/env python3
"""Fail if a guarded benchmark row regressed against the committed record.

Usage:
    check_bench_regression.py MEASURED_JSON [--record BENCH_micro.json]
        [--bench ROW]... [--tolerance 0.10]

MEASURED_JSON is google-benchmark --benchmark_format=json output run
with --benchmark_repetitions; for every guarded row the median across
repetitions is compared against the record's optimized_ns entry.
--bench is repeatable; without it the default guarded set below is
enforced.  Exits non-zero when any measured median exceeds its
committed number by more than the tolerance.

BM_ShardedEngineThroughput rows are skipped when the record's machine
has a single CPU: the sharded drain cannot show wall-clock speedup
without parallelism, so its timing on such a recorder is noise, not a
regression signal.  The row stays in the record for multi-CPU machines.
"""

import argparse
import json
import statistics
import sys

# Rows enforced when no --bench is given.  BM_EngineThroughput/8 is the
# historical acceptance row (default ordering, which now routes through
# the speculative post-grant loop); the two speculative rows pin the
# clean-batch fast path and the rollback-storm adversary separately.
DEFAULT_GUARDED = [
    "BM_EngineThroughput/8",
    "BM_SpeculativeEngineThroughput/8",
    "BM_SpeculativeRollbackStorm/8",
]


def measured_median(report, bench):
    # With --benchmark_repetitions google-benchmark emits one entry
    # per repetition plus _mean/_median/_stddev aggregates; prefer its
    # own median aggregate, fall back to computing one.
    times = []
    for b in report["benchmarks"]:
        if b["name"] == f"{bench}_median":
            return float(b["real_time"])
        if b["name"] == bench and b.get("run_type", "iteration") != "aggregate":
            times.append(float(b["real_time"]))
    if not times:
        sys.exit(f"error: benchmark {bench!r} not found in measured report")
    return statistics.median(times)


def check_row(report, record, bench, tolerance):
    """Returns an error string, or None when the row is within bounds."""
    committed = record["optimized_ns"].get(bench)
    if committed is None:
        return (f"error: {bench!r} has no optimized_ns entry "
                f"in the record")

    measured = measured_median(report, bench)
    ratio = measured / committed
    limit = 1.0 + tolerance
    print(f"{bench}: measured median {measured:.0f} ns, "
          f"committed {committed:.0f} ns ({ratio:.2f}x, "
          f"limit {limit:.2f}x)")
    if ratio > limit:
        return (f"{bench} regressed {(ratio - 1.0) * 100:.1f}% > "
                f"{tolerance * 100:.0f}% tolerance")
    return None


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("measured", help="google-benchmark JSON output")
    ap.add_argument("--record", default="BENCH_micro.json")
    ap.add_argument("--bench", action="append", dest="benches",
                    metavar="ROW",
                    help="row to enforce (repeatable; default: the "
                         "committed guarded set)")
    ap.add_argument("--tolerance", type=float, default=0.10)
    args = ap.parse_args()

    with open(args.measured) as f:
        report = json.load(f)
    with open(args.record) as f:
        record = json.load(f)

    cpus = record.get("machine", {}).get("cpus")
    failures = []
    for bench in args.benches or DEFAULT_GUARDED:
        if bench.startswith("BM_ShardedEngineThroughput") and cpus == 1:
            print(f"{bench}: skipped (record machine has 1 cpu; "
                  f"sharded wall-clock is not comparable)")
            continue
        err = check_row(report, record, bench, args.tolerance)
        if err is not None:
            failures.append(err)

    if failures:
        sys.exit("FAIL: " + "; ".join(failures))
    print("OK")


if __name__ == "__main__":
    main()
