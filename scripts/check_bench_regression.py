#!/usr/bin/env python3
"""Fail if a benchmark regressed against the committed record.

Usage:
    check_bench_regression.py MEASURED_JSON [--record BENCH_micro.json]
        [--bench BM_EngineThroughput/8] [--tolerance 0.10]

MEASURED_JSON is google-benchmark --benchmark_format=json output run
with --benchmark_repetitions; the median across repetitions is
compared against the record's optimized_ns entry for the chosen
benchmark.  Exits non-zero when the measured median exceeds the
committed number by more than the tolerance.
"""

import argparse
import json
import statistics
import sys


def measured_median(report, bench):
    # With --benchmark_repetitions google-benchmark emits one entry
    # per repetition plus _mean/_median/_stddev aggregates; prefer its
    # own median aggregate, fall back to computing one.
    times = []
    for b in report["benchmarks"]:
        if b["name"] == f"{bench}_median":
            return float(b["real_time"])
        if b["name"] == bench and b.get("run_type", "iteration") != "aggregate":
            times.append(float(b["real_time"]))
    if not times:
        sys.exit(f"error: benchmark {bench!r} not found in measured report")
    return statistics.median(times)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("measured", help="google-benchmark JSON output")
    ap.add_argument("--record", default="BENCH_micro.json")
    ap.add_argument("--bench", default="BM_EngineThroughput/8")
    ap.add_argument("--tolerance", type=float, default=0.10)
    args = ap.parse_args()

    with open(args.measured) as f:
        report = json.load(f)
    with open(args.record) as f:
        record = json.load(f)

    committed = record["optimized_ns"].get(args.bench)
    if committed is None:
        sys.exit(f"error: {args.bench!r} has no optimized_ns entry "
                 f"in {args.record}")

    measured = measured_median(report, args.bench)
    ratio = measured / committed
    limit = 1.0 + args.tolerance
    print(f"{args.bench}: measured median {measured:.0f} ns, "
          f"committed {committed:.0f} ns ({ratio:.2f}x, "
          f"limit {limit:.2f}x)")
    if ratio > limit:
        sys.exit(f"FAIL: {args.bench} regressed "
                 f"{(ratio - 1.0) * 100:.1f}% > "
                 f"{args.tolerance * 100:.0f}% tolerance")
    print("OK")


if __name__ == "__main__":
    main()
